// The readiness engine: PR 2's epoll machinery (NetPoller) plus the
// nonblocking-syscall + park-on-EAGAIN retry loops that used to live in
// net.cc. Model: a thread that hits EAGAIN parks until the poller latches a
// readiness edge for the fd, then retries the syscall itself — so every
// operation costs at least one syscall on the calling thread, and the poller
// only ever moves *readiness*, never data.

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/inject/inject.h"
#include "src/net/backend.h"
#include "src/net/net.h"
#include "src/net/net_internal.h"
#include "src/net/poller.h"

namespace sunmt {
namespace {

using net_internal::Deadline;
using net_internal::NetResult;
using net_internal::WouldBlock;
using net_internal::WriteNoSigpipe;
using net_internal::WritevNoSigpipe;

// Whether an injected EAGAIN is allowed to stand. The poller's wakeups are
// edge-triggered: WaitReady may only be entered after a *real* EAGAIN, because
// readiness that arrived earlier has already had its edge latched and consumed.
// Faking an EAGAIN while the fd is ready would park on an edge that never
// comes — a state real execution cannot reach (a true EAGAIN means the fd was
// drained, so any later readiness fires a fresh edge). So the fault only
// stands on a genuinely not-ready fd; otherwise it decays to a no-op and the
// caller performs the real syscall.
bool InjectedEagainHolds(int fd, short events) {
  struct pollfd p = {fd, events, 0};
  return poll(&p, 1, 0) == 0;
}

class EpollBackend : public NetBackend {
 public:
  const char* Name() const override { return "epoll"; }

  int StartDedicated() override { return NetPoller::Get().StartDedicated(); }

  int Stop() override {
    if (!NetPoller::Exists()) {
      return 0;
    }
    return NetPoller::Get().Stop();
  }

  bool Running() const override {
    return NetPoller::Exists() && NetPoller::Get().Running();
  }

  int Register(int fd) override { return NetPoller::Get().Register(fd); }

  int Unregister(int fd) override {
    if (!NetPoller::Exists()) {
      errno = EBADF;
      return -1;
    }
    return NetPoller::Get().Unregister(fd);
  }

  bool IsRegistered(int fd) const override {
    return NetPoller::Exists() && NetPoller::Get().IsRegistered(fd);
  }

  int ParkedCount() const override {
    return NetPoller::Exists() ? NetPoller::Get().ParkedCount() : 0;
  }

  ssize_t Read(int fd, void* buf, size_t count, int64_t timeout_ns) override {
    NetPoller& poller = NetPoller::Get();
    Deadline deadline(timeout_ns);
    count = inject::ShortTransfer(inject::kNetSyscall, count);
    for (;;) {
      // Injected not-ready: skip the syscall and take the WaitReady path, as
      // if the data arrived just after an EAGAIN — races the deadline against
      // the park/wake machinery. (Not with timeout 0: a nonblocking try must
      // report the fd's true state. Not on a ready fd: see InjectedEagainHolds.)
      if (timeout_ns == 0 || !inject::Fault(inject::kNetSyscall) ||
          !InjectedEagainHolds(fd, POLLIN)) {
        ssize_t n = read(fd, buf, count);
        if (n >= 0) {
          return NetResult(n, 0);
        }
        if (!WouldBlock(errno)) {
          return NetResult<ssize_t>(-1, errno);
        }
      }
      if (inject::Fault(inject::kNetWaitReady)) {
        continue;  // injected spurious readiness: retry the syscall
      }
      int rc = poller.WaitReady(fd, NET_READABLE, deadline.Remaining());
      if (rc == ETIME && timeout_ns == 0) {
        rc = EAGAIN;  // a nonblocking try reports like the raw syscall
      }
      if (rc != 0) {
        return NetResult<ssize_t>(-1, rc);
      }
    }
  }

  ssize_t Write(int fd, const void* buf, size_t count,
                int64_t timeout_ns) override {
    NetPoller& poller = NetPoller::Get();
    Deadline deadline(timeout_ns);
    count = inject::ShortTransfer(inject::kNetSyscall, count);
    for (;;) {
      if (timeout_ns == 0 || !inject::Fault(inject::kNetSyscall) ||
          !InjectedEagainHolds(fd, POLLOUT)) {
        ssize_t n = WriteNoSigpipe(fd, buf, count);
        if (n >= 0) {
          return NetResult(n, 0);
        }
        if (!WouldBlock(errno)) {
          return NetResult<ssize_t>(-1, errno);
        }
      }
      if (inject::Fault(inject::kNetWaitReady)) {
        continue;
      }
      int rc = poller.WaitReady(fd, NET_WRITABLE, deadline.Remaining());
      if (rc == ETIME && timeout_ns == 0) {
        rc = EAGAIN;
      }
      if (rc != 0) {
        return NetResult<ssize_t>(-1, rc);
      }
    }
  }

  ssize_t Writev(int fd, const struct iovec* iov, int iovcnt,
                 int64_t timeout_ns) override {
    // Local copy: continuation after a partial writev advances iov_base/
    // iov_len of the first incomplete entry, which must not scribble on the
    // caller's (possibly const, possibly reused) array.
    struct iovec local[NET_IOV_MAX];
    size_t total = 0;
    for (int i = 0; i < iovcnt; ++i) {
      local[i] = iov[i];
      total += iov[i].iov_len;
    }
    if (total == 0) {
      return NetResult<ssize_t>(0, 0);
    }
    NetPoller& poller = NetPoller::Get();
    Deadline deadline(timeout_ns);
    int idx = 0;
    for (;;) {
      while (idx < iovcnt && local[idx].iov_len == 0) {
        ++idx;
      }
      if (idx == iovcnt) {
        return NetResult<ssize_t>(static_cast<ssize_t>(total), 0);
      }
      if (timeout_ns == 0 || !inject::Fault(inject::kNetSyscall) ||
          !InjectedEagainHolds(fd, POLLOUT)) {
        // Injected short transfer: clamp this attempt to a prefix of the
        // first pending entry, exercising the mid-entry continuation below.
        size_t clamped =
            inject::ShortTransfer(inject::kNetSyscall, local[idx].iov_len);
        ssize_t n = clamped < local[idx].iov_len
                        ? WriteNoSigpipe(fd, local[idx].iov_base, clamped)
                        : WritevNoSigpipe(fd, &local[idx], iovcnt - idx);
        if (n > 0) {
          size_t adv = static_cast<size_t>(n);
          while (adv > 0 && idx < iovcnt) {
            if (adv >= local[idx].iov_len) {
              adv -= local[idx].iov_len;
              local[idx].iov_len = 0;
              ++idx;
            } else {
              local[idx].iov_base =
                  static_cast<char*>(local[idx].iov_base) + adv;
              local[idx].iov_len -= adv;
              adv = 0;
            }
          }
          continue;  // partial write: the fd may still be writable, retry first
        }
        if (n < 0 && !WouldBlock(errno)) {
          return NetResult<ssize_t>(-1, errno);
        }
      }
      if (inject::Fault(inject::kNetWaitReady)) {
        continue;
      }
      int rc = poller.WaitReady(fd, NET_WRITABLE, deadline.Remaining());
      if (rc == ETIME && timeout_ns == 0) {
        rc = EAGAIN;
      }
      if (rc != 0) {
        return NetResult<ssize_t>(-1, rc);
      }
    }
  }

  int Accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
             int64_t timeout_ns) override {
    NetPoller& poller = NetPoller::Get();
    Deadline deadline(timeout_ns);
    for (;;) {
      if (timeout_ns == 0 || !inject::Fault(inject::kNetSyscall) ||
          !InjectedEagainHolds(sockfd, POLLIN)) {
        int fd = accept(sockfd, addr, addrlen);
        if (fd >= 0) {
          return NetResult(fd, 0);
        }
        if (!WouldBlock(errno)) {
          return NetResult(-1, errno);
        }
      }
      if (inject::Fault(inject::kNetWaitReady)) {
        continue;
      }
      int rc = poller.WaitReady(sockfd, NET_READABLE, deadline.Remaining());
      if (rc == ETIME && timeout_ns == 0) {
        rc = EAGAIN;
      }
      if (rc != 0) {
        return NetResult(-1, rc);
      }
    }
  }

  int Connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen,
              int64_t timeout_ns) override {
    if (connect(sockfd, addr, addrlen) == 0) {
      return NetResult(0, 0);
    }
    if (errno == EINTR || errno == EINPROGRESS) {
      // Nonblocking connect in flight: writability signals completion, and
      // the verdict is read out of SO_ERROR (connect(2), EINPROGRESS).
      int rc = NetPoller::Get().WaitReady(sockfd, NET_WRITABLE, timeout_ns);
      if (rc != 0) {
        return NetResult(-1, rc);
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (getsockopt(sockfd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
        return NetResult(-1, errno);
      }
      return NetResult(so_error == 0 ? 0 : -1, so_error);
    }
    return NetResult(-1, errno);
  }

  int WaitReady(int fd, uint32_t events, int64_t timeout_ns) override {
    if (!NetPoller::Exists()) {
      return EBADF;
    }
    return NetPoller::Get().WaitReady(fd, events, timeout_ns);
  }

  int PollInline() override { return NetPoller::IdlePollHook(); }

  void Snapshot(NetBackendStats* out) const override {
    *out = NetBackendStats{};
    out->name = Name();
    if (NetPoller::Exists()) {
      out->registered = NetPoller::Get().RegisteredCount();
      out->parked = NetPoller::Get().ParkedCount();
    }
  }
};

}  // namespace

NetBackend* NetEpollBackendGet() {
  static EpollBackend* backend = new EpollBackend();  // leaked like the poller
  return backend;
}

}  // namespace sunmt
