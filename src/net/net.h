// Netpoller: event-driven socket/pipe I/O that parks threads, not LWPs.
//
// The kernel-call rule ("the thread needing the system service remains bound to
// the LWP executing it until the system call is completed") makes every blocked
// io_read pin an LWP in the kernel; a server with N mostly-idle connections
// then needs ~N LWPs, with SIGWAITING growing the pool one watchdog period at a
// time. This module is the M:N architecture's answer: file descriptors are
// registered with a netpoller engine, and a thread that would have blocked in
// the kernel instead parks in the user-level scheduler until its I/O can
// complete. The LWP pool stays at the configured concurrency no matter how
// many connections are idle.
//
// Two engines implement this API behind the interface in backend.h, selected
// by SUNMT_NET_BACKEND (epoll|uring, default epoll, "uring" falls back to
// epoll on kernels without io_uring):
//  * The readiness engine (epoll): fds are made nonblocking, one epoll(7)
//    instance watches all of them, and a thread that hits EAGAIN parks until
//    the engine reports readiness, then retries the syscall itself.
//  * The completion engine (io_uring): a ready op is served by one
//    nonblocking try, and an op that would block is submitted to the kernel
//    as an SQE; the thread parks until the CQE arrives carrying the result,
//    so there is no post-wake retry syscall and no readiness race.
//
// Modes (either engine):
//  * Dedicated (net_poller_start()): a bound thread — owning its own LWP, so
//    pool LWPs are never consumed — blocks in the kernel (epoll_wait or
//    io_uring_enter) and wakes parked threads as events/completions arrive.
//    This is the serving configuration.
//  * Inline fallback (no start call): registering an fd arms the scheduler's
//    idle path and a periodic timer tick to poll with a zero timeout, so the
//    API still works (with ~ms wake latency) before the engine is configured.
//
// Registered fds are also honored by the src/io wrappers (io_read/io_write/
// io_accept route to the parking path), so blocking-style code gets the
// economics without changing call sites. Unregistered fds keep the old
// LWP-blocking behavior.
//
// Errors land in thread_errno() (the paper's per-thread errno), including
// ETIME for expired deadlines and ECANCELED when the engine shuts down under a
// parked thread.

#ifndef SUNMT_SRC_NET_NET_H_
#define SUNMT_SRC_NET_NET_H_

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>

#include <cstdint>

namespace sunmt {

// Starts the dedicated engine thread: a THREAD_BIND_LWP thread blocking in
// epoll_wait (readiness engine) or io_uring_enter (completion engine).
// Idempotent; returns 0, or -1 (thread_errno set) on failure. Safe to call
// before or after net_register.
int net_poller_start();

// Stops the poller and wakes every parked thread with ECANCELED. In-flight
// net_* calls return -1; fds stay registered and nonblocking, and a later
// net_poller_start() (or the inline fallback) resumes service. Returns 0.
int net_poller_stop();

// True if readiness events are being delivered (dedicated or inline mode).
bool net_poller_running();

// Registers `fd` with the active engine: makes it nonblocking (O_NONBLOCK is
// a property of the open file description) and starts watching it. Regular
// files are not pollable — both engines refuse them (EPERM). Returns 0, or
// -1 with thread_errno set.
int net_register(int fd);

// Removes `fd` from the poller and wakes its parked waiters (their retried
// operation sees whatever the fd returns — typically EAGAIN surfaced as
// thread_errno). Call before close(2); the fd remains nonblocking. Returns 0,
// or -1 if the fd was not registered.
int net_unregister(int fd);

// True if `fd` is currently registered.
bool net_is_registered(int fd);

// Number of threads currently parked on fd readiness (tests/introspection).
int net_parked_count();

// ---- Parking I/O on registered fds -----------------------------------------
// Each call parks the calling thread until the operation can complete — by
// readiness retry (epoll engine) or submitted completion (uring engine).
// Results and errno semantics match the plain syscalls; deadline variants
// return -1 with thread_errno() == ETIME if `timeout_ns` elapses first
// (timeout_ns < 0 waits forever; 0 is a pure nonblocking try).

ssize_t net_read(int fd, void* buf, size_t count);
ssize_t net_write(int fd, const void* buf, size_t count);
ssize_t net_read_deadline(int fd, void* buf, size_t count, int64_t timeout_ns);
ssize_t net_write_deadline(int fd, const void* buf, size_t count, int64_t timeout_ns);

// Scatter-gather write with partial-write continuation: sends the ENTIRE iov
// list (at most NET_IOV_MAX entries), parking on EAGAIN and resuming a partial
// writev(2) mid-entry, so protocol code can send header+body from separate
// buffers without an intermediate copy. Unlike net_write (one successful
// syscall), success means every byte was written; returns the total, or -1
// with thread_errno set (ETIME on the deadline variant — bytes already
// accepted by the kernel before the failure are consumed). A timeout of 0 is
// a nonblocking try and fails with EAGAIN if the full list does not fit.
inline constexpr int NET_IOV_MAX = 64;
ssize_t net_writev(int fd, const struct iovec* iov, int iovcnt);
ssize_t net_writev_deadline(int fd, const struct iovec* iov, int iovcnt,
                            int64_t timeout_ns);

// accept(2) on a registered listening socket. The accepted fd is returned
// blocking-mode untouched and unregistered; register it to serve it through
// the engine. addr/addrlen may be null (the peer address is discarded).
int net_accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen);
inline int net_accept(int sockfd) { return net_accept(sockfd, nullptr, nullptr); }
int net_accept_deadline(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
                        int64_t timeout_ns);

// connect(2) on a registered socket: initiates the connect, parks until it
// resolves (writability + SO_ERROR on the readiness engine, the OP_CONNECT
// CQE on the completion engine), and reports the verdict. Returns 0, or -1
// with thread_errno set (ETIME on the deadline variant).
int net_connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen);
int net_connect_deadline(int sockfd, const struct sockaddr* addr, socklen_t addrlen,
                         int64_t timeout_ns);

// Parks the calling thread until `fd` is readable (events=NET_READABLE) or
// writable (NET_WRITABLE). Building block for protocols the wrappers above do
// not cover. Returns 0 on readiness, or ETIME / ECANCELED / EBADF.
enum : uint32_t {
  NET_READABLE = 1u << 0,
  NET_WRITABLE = 1u << 1,
};
int net_wait_ready(int fd, uint32_t events, int64_t timeout_ns);

}  // namespace sunmt

#endif  // SUNMT_SRC_NET_NET_H_
