// Helpers shared by the netpoller engines (src/net internal): the
// thread_errno() funnel, the multi-park deadline budget, and the MSG_NOSIGNAL
// write shims. Both engines must agree on these semantics exactly — they are
// the observable contract of net.h, and the parameterized net/http test runs
// hold each engine to it.

#ifndef SUNMT_SRC_NET_NET_INTERNAL_H_
#define SUNMT_SRC_NET_NET_INTERNAL_H_

#include <errno.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstdint>

#include "src/io/io.h"
#include "src/util/clock.h"

namespace sunmt {
namespace net_internal {

// Success/failure funnel shared by all wrappers: errors land in
// thread_errno(), which is additionally cleared to 0 on success.
template <typename T>
T NetResult(T result, int err) {
  thread_errno() = err;
  if (err != 0) {
    return static_cast<T>(-1);
  }
  return result;
}

inline bool WouldBlock(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

// Remaining budget for multi-park operations: each re-park (e.g. after a
// concurrent consumer stole the readiness, or a partial writev) must not
// restart the clock. Forever (<0) and nonblocking-try (0) pass through.
struct Deadline {
  explicit Deadline(int64_t timeout_ns)
      : timeout_ns_(timeout_ns),
        start_ns_(timeout_ns > 0 ? MonotonicNowNs() : 0) {}

  int64_t Remaining() const {
    if (timeout_ns_ <= 0) {
      return timeout_ns_;
    }
    int64_t left = timeout_ns_ - (MonotonicNowNs() - start_ns_);
    // A fully consumed deadline must not turn into "wait forever" or a
    // nonblocking try that reports EAGAIN; 1ns parks and times out as ETIME.
    return left > 0 ? left : 1;
  }

  int64_t timeout_ns_;
  int64_t start_ns_;
};

// write(2)/writev(2) on a peer-closed socket raise SIGPIPE, which would kill
// the whole process out from under every other connection (first hit by the
// HTTP server, where clients hang up whenever they like). MSG_NOSIGNAL turns
// that into a plain EPIPE; non-socket fds fall back to the raw syscalls.
inline ssize_t WriteNoSigpipe(int fd, const void* buf, size_t count) {
  ssize_t n = send(fd, buf, count, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) {
    n = write(fd, buf, count);
  }
  return n;
}

inline ssize_t WritevNoSigpipe(int fd, const struct iovec* iov, int iovcnt) {
  struct msghdr msg = {};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  ssize_t n = sendmsg(fd, &msg, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) {
    n = writev(fd, iov, iovcnt);
  }
  return n;
}

}  // namespace net_internal
}  // namespace sunmt

#endif  // SUNMT_SRC_NET_NET_INTERNAL_H_
