// Public netpoller API: nonblocking syscall + park-on-EAGAIN retry loops over
// NetPoller::WaitReady. Every wrapper reports errors through thread_errno()
// like the src/io family, and additionally clears it to 0 on success.

#include "src/net/net.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

#include "src/inject/inject.h"
#include "src/io/io.h"
#include "src/net/poller.h"
#include "src/util/clock.h"

namespace sunmt {
namespace {

// Success/failure funnel shared by all wrappers.
template <typename T>
T NetResult(T result, int err) {
  thread_errno() = err;
  if (err != 0) {
    return static_cast<T>(-1);
  }
  return result;
}

bool WouldBlock(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

// Whether an injected EAGAIN is allowed to stand. The poller's wakeups are
// edge-triggered: WaitReady may only be entered after a *real* EAGAIN, because
// readiness that arrived earlier has already had its edge latched and consumed.
// Faking an EAGAIN while the fd is ready would park on an edge that never
// comes — a state real execution cannot reach (a true EAGAIN means the fd was
// drained, so any later readiness fires a fresh edge). So the fault only
// stands on a genuinely not-ready fd; otherwise it decays to a no-op and the
// caller performs the real syscall.
bool InjectedEagainHolds(int fd, short events) {
  struct pollfd p = {fd, events, 0};
  return poll(&p, 1, 0) == 0;
}

// Routes io_read/io_write/io_accept on registered fds through the parking
// path, so blocking-style call sites inherit the poller's LWP economics.
// Installed lazily at first registration (before that no fd is managed).
void EnsureIoRouter() {
  static const IoNetRouter kRouter = {
      &net_is_registered,
      &net_read,
      &net_write,
      static_cast<int (*)(int, struct sockaddr*, socklen_t*)>(&net_accept),
  };
  static std::atomic<bool> installed{false};
  if (!installed.exchange(true, std::memory_order_acq_rel)) {
    io_set_net_router(&kRouter);
  }
}

// Remaining budget for multi-park operations: each EAGAIN re-park (e.g. after
// a concurrent consumer stole the readiness) must not restart the clock.
// Forever (<0) and nonblocking-try (0) pass through. Returns ETIME-as-expired
// via a 0 result once the deadline has been consumed.
struct Deadline {
  explicit Deadline(int64_t timeout_ns)
      : timeout_ns_(timeout_ns),
        start_ns_(timeout_ns > 0 ? MonotonicNowNs() : 0) {}

  int64_t Remaining() const {
    if (timeout_ns_ <= 0) {
      return timeout_ns_;
    }
    int64_t left = timeout_ns_ - (MonotonicNowNs() - start_ns_);
    // A fully consumed deadline must not turn into "wait forever" or a
    // nonblocking try that reports EAGAIN; 1ns parks and times out as ETIME.
    return left > 0 ? left : 1;
  }

  int64_t timeout_ns_;
  int64_t start_ns_;
};

}  // namespace

// ---- Lifecycle / registration ----------------------------------------------

int net_poller_start() {
  int rc = NetPoller::Get().StartDedicated();
  return NetResult(rc, rc == 0 ? 0 : errno);
}

int net_poller_stop() {
  if (!NetPoller::Exists()) {
    return 0;
  }
  int rc = NetPoller::Get().Stop();
  return NetResult(rc, rc == 0 ? 0 : errno);
}

bool net_poller_running() {
  return NetPoller::Exists() && NetPoller::Get().Running();
}

int net_register(int fd) {
  EnsureIoRouter();
  int rc = NetPoller::Get().Register(fd);
  return NetResult(rc, rc == 0 ? 0 : errno);
}

int net_unregister(int fd) {
  if (!NetPoller::Exists()) {
    return NetResult(-1, EBADF);
  }
  int rc = NetPoller::Get().Unregister(fd);
  return NetResult(rc, rc == 0 ? 0 : errno);
}

bool net_is_registered(int fd) {
  return NetPoller::Exists() && NetPoller::Get().IsRegistered(fd);
}

int net_parked_count() {
  return NetPoller::Exists() ? NetPoller::Get().ParkedCount() : 0;
}

int net_wait_ready(int fd, uint32_t events, int64_t timeout_ns) {
  if (!NetPoller::Exists()) {
    return EBADF;
  }
  return NetPoller::Get().WaitReady(fd, events, timeout_ns);
}

// ---- Parking I/O ------------------------------------------------------------

ssize_t net_read_deadline(int fd, void* buf, size_t count, int64_t timeout_ns) {
  NetPoller& poller = NetPoller::Get();
  Deadline deadline(timeout_ns);
  count = inject::ShortTransfer(inject::kNetSyscall, count);
  for (;;) {
    // Injected not-ready: skip the syscall and take the WaitReady path, as if
    // the data arrived just after an EAGAIN — races the deadline against the
    // park/wake machinery. (Not with timeout 0: a nonblocking try must report
    // the fd's true state. Not on a ready fd: see InjectedEagainHolds.)
    if (timeout_ns == 0 || !inject::Fault(inject::kNetSyscall) ||
        !InjectedEagainHolds(fd, POLLIN)) {
      ssize_t n = read(fd, buf, count);
      if (n >= 0) {
        return NetResult(n, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult<ssize_t>(-1, errno);
      }
    }
    if (inject::Fault(inject::kNetWaitReady)) {
      continue;  // injected spurious readiness: retry the syscall
    }
    int rc = poller.WaitReady(fd, NET_READABLE, deadline.Remaining());
    if (rc == ETIME && timeout_ns == 0) {
      rc = EAGAIN;  // a nonblocking try reports like the raw syscall
    }
    if (rc != 0) {
      return NetResult<ssize_t>(-1, rc);
    }
  }
}

ssize_t net_read(int fd, void* buf, size_t count) {
  return net_read_deadline(fd, buf, count, /*timeout_ns=*/-1);
}

namespace {

// write(2)/writev(2) on a peer-closed socket raise SIGPIPE, which would kill
// the whole process out from under every other connection (first hit by the
// HTTP server, where clients hang up whenever they like). MSG_NOSIGNAL turns
// that into a plain EPIPE; non-socket fds fall back to the raw syscalls.
ssize_t WriteNoSigpipe(int fd, const void* buf, size_t count) {
  ssize_t n = send(fd, buf, count, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) {
    n = write(fd, buf, count);
  }
  return n;
}

ssize_t WritevNoSigpipe(int fd, const struct iovec* iov, int iovcnt) {
  struct msghdr msg = {};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  ssize_t n = sendmsg(fd, &msg, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) {
    n = writev(fd, iov, iovcnt);
  }
  return n;
}

}  // namespace

ssize_t net_write_deadline(int fd, const void* buf, size_t count,
                           int64_t timeout_ns) {
  NetPoller& poller = NetPoller::Get();
  Deadline deadline(timeout_ns);
  count = inject::ShortTransfer(inject::kNetSyscall, count);
  for (;;) {
    if (timeout_ns == 0 || !inject::Fault(inject::kNetSyscall) ||
        !InjectedEagainHolds(fd, POLLOUT)) {
      ssize_t n = WriteNoSigpipe(fd, buf, count);
      if (n >= 0) {
        return NetResult(n, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult<ssize_t>(-1, errno);
      }
    }
    if (inject::Fault(inject::kNetWaitReady)) {
      continue;
    }
    int rc = poller.WaitReady(fd, NET_WRITABLE, deadline.Remaining());
    if (rc == ETIME && timeout_ns == 0) {
      rc = EAGAIN;
    }
    if (rc != 0) {
      return NetResult<ssize_t>(-1, rc);
    }
  }
}

ssize_t net_write(int fd, const void* buf, size_t count) {
  return net_write_deadline(fd, buf, count, /*timeout_ns=*/-1);
}

ssize_t net_writev_deadline(int fd, const struct iovec* iov, int iovcnt,
                            int64_t timeout_ns) {
  if (iovcnt < 0 || iovcnt > NET_IOV_MAX) {
    return NetResult<ssize_t>(-1, EINVAL);
  }
  // Local copy: continuation after a partial writev advances iov_base/iov_len
  // of the first incomplete entry, which must not scribble on the caller's
  // (possibly const, possibly reused) array.
  struct iovec local[NET_IOV_MAX];
  size_t total = 0;
  for (int i = 0; i < iovcnt; ++i) {
    local[i] = iov[i];
    total += iov[i].iov_len;
  }
  if (total == 0) {
    return NetResult<ssize_t>(0, 0);
  }
  NetPoller& poller = NetPoller::Get();
  Deadline deadline(timeout_ns);
  int idx = 0;
  size_t written = 0;
  for (;;) {
    while (idx < iovcnt && local[idx].iov_len == 0) {
      ++idx;
    }
    if (idx == iovcnt) {
      return NetResult<ssize_t>(static_cast<ssize_t>(total), 0);
    }
    if (timeout_ns == 0 || !inject::Fault(inject::kNetSyscall) ||
        !InjectedEagainHolds(fd, POLLOUT)) {
      // Injected short transfer: clamp this attempt to a prefix of the first
      // pending entry, exercising the mid-entry continuation below.
      size_t clamped = inject::ShortTransfer(inject::kNetSyscall, local[idx].iov_len);
      ssize_t n = clamped < local[idx].iov_len
                      ? WriteNoSigpipe(fd, local[idx].iov_base, clamped)
                      : WritevNoSigpipe(fd, &local[idx], iovcnt - idx);
      if (n > 0) {
        written += static_cast<size_t>(n);
        size_t adv = static_cast<size_t>(n);
        while (adv > 0 && idx < iovcnt) {
          if (adv >= local[idx].iov_len) {
            adv -= local[idx].iov_len;
            local[idx].iov_len = 0;
            ++idx;
          } else {
            local[idx].iov_base = static_cast<char*>(local[idx].iov_base) + adv;
            local[idx].iov_len -= adv;
            adv = 0;
          }
        }
        continue;  // partial write: the fd may still be writable, retry first
      }
      if (n < 0 && !WouldBlock(errno)) {
        return NetResult<ssize_t>(-1, errno);
      }
    }
    if (inject::Fault(inject::kNetWaitReady)) {
      continue;
    }
    int rc = poller.WaitReady(fd, NET_WRITABLE, deadline.Remaining());
    if (rc == ETIME && timeout_ns == 0) {
      rc = EAGAIN;
    }
    if (rc != 0) {
      return NetResult<ssize_t>(-1, rc);
    }
  }
}

ssize_t net_writev(int fd, const struct iovec* iov, int iovcnt) {
  return net_writev_deadline(fd, iov, iovcnt, /*timeout_ns=*/-1);
}

int net_accept_deadline(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
                        int64_t timeout_ns) {
  NetPoller& poller = NetPoller::Get();
  Deadline deadline(timeout_ns);
  for (;;) {
    if (timeout_ns == 0 || !inject::Fault(inject::kNetSyscall) ||
        !InjectedEagainHolds(sockfd, POLLIN)) {
      int fd = accept(sockfd, addr, addrlen);
      if (fd >= 0) {
        return NetResult(fd, 0);
      }
      if (!WouldBlock(errno)) {
        return NetResult(-1, errno);
      }
    }
    if (inject::Fault(inject::kNetWaitReady)) {
      continue;
    }
    int rc = poller.WaitReady(sockfd, NET_READABLE, deadline.Remaining());
    if (rc == ETIME && timeout_ns == 0) {
      rc = EAGAIN;
    }
    if (rc != 0) {
      return NetResult(-1, rc);
    }
  }
}

int net_accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) {
  return net_accept_deadline(sockfd, addr, addrlen, /*timeout_ns=*/-1);
}

int net_connect_deadline(int sockfd, const struct sockaddr* addr,
                         socklen_t addrlen, int64_t timeout_ns) {
  if (connect(sockfd, addr, addrlen) == 0) {
    return NetResult(0, 0);
  }
  if (errno == EINTR || errno == EINPROGRESS) {
    // Nonblocking connect in flight: writability signals completion, and the
    // verdict is read out of SO_ERROR (connect(2), EINPROGRESS).
    int rc = NetPoller::Get().WaitReady(sockfd, NET_WRITABLE, timeout_ns);
    if (rc != 0) {
      return NetResult(-1, rc);
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(sockfd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
      return NetResult(-1, errno);
    }
    return NetResult(so_error == 0 ? 0 : -1, so_error);
  }
  return NetResult(-1, errno);
}

int net_connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen) {
  return net_connect_deadline(sockfd, addr, addrlen, /*timeout_ns=*/-1);
}

}  // namespace sunmt
