// Public netpoller API: thin dispatch onto the active engine (backend.h).
// Each engine owns its complete retry/park loop and reports errors through
// thread_errno() exactly as documented in net.h (cleared to 0 on success);
// the wrappers here only add the lazy io-router installation and the
// no-engine-yet guards for cold paths.

#include "src/net/net.h"

#include <errno.h>

#include <atomic>

#include "src/io/io.h"
#include "src/net/backend.h"
#include "src/net/net_internal.h"

namespace sunmt {
namespace {

using net_internal::NetResult;

// Routes io_read/io_write/io_accept on registered fds through the parking
// path, so blocking-style call sites inherit the netpoller's LWP economics.
// Installed lazily at first registration (before that no fd is managed).
void EnsureIoRouter() {
  static const IoNetRouter kRouter = {
      &net_is_registered,
      &net_read,
      &net_write,
      static_cast<int (*)(int, struct sockaddr*, socklen_t*)>(&net_accept),
  };
  static std::atomic<bool> installed{false};
  if (!installed.exchange(true, std::memory_order_acq_rel)) {
    io_set_net_router(&kRouter);
  }
}

}  // namespace

// ---- Lifecycle / registration ----------------------------------------------

int net_poller_start() {
  int rc = net_backend().StartDedicated();
  return NetResult(rc, rc == 0 ? 0 : errno);
}

int net_poller_stop() {
  if (!net_backend_exists()) {
    return 0;
  }
  int rc = net_backend().Stop();
  return NetResult(rc, rc == 0 ? 0 : errno);
}

bool net_poller_running() {
  return net_backend_exists() && net_backend().Running();
}

int net_register(int fd) {
  EnsureIoRouter();
  int rc = net_backend().Register(fd);
  return NetResult(rc, rc == 0 ? 0 : errno);
}

int net_unregister(int fd) {
  if (!net_backend_exists()) {
    return NetResult(-1, EBADF);
  }
  int rc = net_backend().Unregister(fd);
  return NetResult(rc, rc == 0 ? 0 : errno);
}

bool net_is_registered(int fd) {
  return net_backend_exists() && net_backend().IsRegistered(fd);
}

int net_parked_count() {
  return net_backend_exists() ? net_backend().ParkedCount() : 0;
}

int net_wait_ready(int fd, uint32_t events, int64_t timeout_ns) {
  if (!net_backend_exists()) {
    return EBADF;
  }
  return net_backend().WaitReady(fd, events, timeout_ns);
}

// ---- Parking I/O ------------------------------------------------------------

ssize_t net_read_deadline(int fd, void* buf, size_t count, int64_t timeout_ns) {
  return net_backend().Read(fd, buf, count, timeout_ns);
}

ssize_t net_read(int fd, void* buf, size_t count) {
  return net_read_deadline(fd, buf, count, /*timeout_ns=*/-1);
}

ssize_t net_write_deadline(int fd, const void* buf, size_t count,
                           int64_t timeout_ns) {
  return net_backend().Write(fd, buf, count, timeout_ns);
}

ssize_t net_write(int fd, const void* buf, size_t count) {
  return net_write_deadline(fd, buf, count, /*timeout_ns=*/-1);
}

ssize_t net_writev_deadline(int fd, const struct iovec* iov, int iovcnt,
                            int64_t timeout_ns) {
  if (iovcnt < 0 || iovcnt > NET_IOV_MAX) {
    return NetResult<ssize_t>(-1, EINVAL);
  }
  return net_backend().Writev(fd, iov, iovcnt, timeout_ns);
}

ssize_t net_writev(int fd, const struct iovec* iov, int iovcnt) {
  return net_writev_deadline(fd, iov, iovcnt, /*timeout_ns=*/-1);
}

int net_accept_deadline(int sockfd, struct sockaddr* addr, socklen_t* addrlen,
                        int64_t timeout_ns) {
  return net_backend().Accept(sockfd, addr, addrlen, timeout_ns);
}

int net_accept(int sockfd, struct sockaddr* addr, socklen_t* addrlen) {
  return net_accept_deadline(sockfd, addr, addrlen, /*timeout_ns=*/-1);
}

int net_connect_deadline(int sockfd, const struct sockaddr* addr,
                         socklen_t addrlen, int64_t timeout_ns) {
  return net_backend().Connect(sockfd, addr, addrlen, timeout_ns);
}

int net_connect(int sockfd, const struct sockaddr* addr, socklen_t addrlen) {
  return net_connect_deadline(sockfd, addr, addrlen, /*timeout_ns=*/-1);
}

}  // namespace sunmt
