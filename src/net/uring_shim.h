// Minimal, liburing-free io_uring plumbing: the three raw syscalls and the
// ring mmap layout. The build must stay dependency-free (the container bakes
// in only the C++ toolchain), and the engine needs so little of liburing —
// append an SQE, bump a tail, read CQEs — that the vendored shim is smaller
// than the dependency.
//
// Ring indices are shared with the kernel, so every access goes through the
// __atomic builtins (which TSan instruments): the kernel advances sq_head and
// cq_tail; userspace advances sq_tail (release, after writing the SQE) and
// cq_head (release, after reading the CQE).
//
// Only rings with IORING_FEAT_SINGLE_MMAP + IORING_FEAT_NODROP (Linux 5.4+)
// are accepted; anything older fails the probe and the engine falls back to
// epoll, which keeps the mapping and overflow logic out of this file.

#ifndef SUNMT_SRC_NET_URING_SHIM_H_
#define SUNMT_SRC_NET_URING_SHIM_H_

#include <linux/io_uring.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>

namespace sunmt {
namespace uring {

inline int Setup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

inline int Enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                 unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

inline int Register(int ring_fd, unsigned opcode, const void* arg,
                    unsigned nr_args) {
  return static_cast<int>(
      syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

// The mapped ring. Plain data; locking and submission discipline live in the
// engine (uring_backend.cc).
struct Ring {
  int fd = -1;
  unsigned sq_entries = 0;
  unsigned cq_entries = 0;
  unsigned sq_mask = 0;
  unsigned cq_mask = 0;
  unsigned* sq_head = nullptr;   // kernel-advanced consume index
  unsigned* sq_tail = nullptr;   // our produce index
  unsigned* sq_array = nullptr;  // index indirection into sqes[]
  struct io_uring_sqe* sqes = nullptr;
  unsigned* cq_head = nullptr;   // our consume index
  unsigned* cq_tail = nullptr;   // kernel-advanced produce index
  struct io_uring_cqe* cqes = nullptr;

  // Creates and maps a ring. Returns false (with the partial state torn down)
  // when the kernel cannot provide one this engine can drive.
  bool Init(unsigned entries, unsigned cq_size) {
    struct io_uring_params p;
    memset(&p, 0, sizeof(p));
    p.flags = IORING_SETUP_CQSIZE;
    p.cq_entries = cq_size;
    fd = Setup(entries, &p);
    if (fd < 0) {
      // Pre-5.5 kernels reject IORING_SETUP_CQSIZE; the default CQ (2*SQ) is
      // still workable thanks to NODROP, so retry plain before giving up.
      memset(&p, 0, sizeof(p));
      fd = Setup(entries, &p);
    }
    if (fd < 0) {
      return false;  // ENOSYS / EPERM (seccomp): no io_uring here
    }
    if ((p.features & IORING_FEAT_SINGLE_MMAP) == 0 ||
        (p.features & IORING_FEAT_NODROP) == 0) {
      close(fd);
      fd = -1;
      return false;
    }
    sq_entries = p.sq_entries;
    cq_entries = p.cq_entries;
    size_t sq_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    size_t cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    ring_sz_ = sq_sz > cq_sz ? sq_sz : cq_sz;
    ring_ptr_ = mmap(nullptr, ring_sz_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    sqes_sz_ = p.sq_entries * sizeof(struct io_uring_sqe);
    sqes_ptr_ = mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (ring_ptr_ == MAP_FAILED || sqes_ptr_ == MAP_FAILED) {
      Destroy();
      return false;
    }
    char* base = static_cast<char*>(ring_ptr_);
    sq_head = reinterpret_cast<unsigned*>(base + p.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(base + p.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(base + p.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(base + p.sq_off.array);
    sqes = static_cast<struct io_uring_sqe*>(sqes_ptr_);
    cq_head = reinterpret_cast<unsigned*>(base + p.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(base + p.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(base + p.cq_off.ring_mask);
    cqes = reinterpret_cast<struct io_uring_cqe*>(base + p.cq_off.cqes);
    return true;
  }

  void Destroy() {
    if (ring_ptr_ != nullptr && ring_ptr_ != MAP_FAILED) {
      munmap(ring_ptr_, ring_sz_);
    }
    if (sqes_ptr_ != nullptr && sqes_ptr_ != MAP_FAILED) {
      munmap(sqes_ptr_, sqes_sz_);
    }
    if (fd >= 0) {
      close(fd);
    }
    ring_ptr_ = sqes_ptr_ = nullptr;
    fd = -1;
  }

 private:
  void* ring_ptr_ = nullptr;
  size_t ring_sz_ = 0;
  void* sqes_ptr_ = nullptr;
  size_t sqes_sz_ = 0;
};

}  // namespace uring
}  // namespace sunmt

#endif  // SUNMT_SRC_NET_URING_SHIM_H_
