#include "src/net/poller.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <new>

#include "src/core/runtime.h"
#include "src/core/scheduler.h"
#include "src/core/trace.h"
#include "src/inject/inject.h"
#include "src/lwp/kernel_wait.h"
#include "src/net/net.h"
#include "src/stats/stats.h"
#include "src/sync/waitq.h"
#include "src/timer/timer.h"
#include "src/util/check.h"
#include "src/util/clock.h"
#include "src/util/object_cache.h"

namespace sunmt {
namespace {

// Period of the fallback polls (scheduler idle path and timer tick) when no
// dedicated LWP is configured: the worst-case wake latency of inline mode.
constexpr int64_t kInlinePollPeriodNs = 1 * 1000 * 1000;

// epoll_wait batch size for one drain.
constexpr int kEventBatch = 128;

std::atomic<NetPoller*> g_poller{nullptr};
SpinLock g_poller_create_lock;

// Mode is process-global so the fork handler and Exists() can consult it
// without touching a half-built singleton.
enum class Mode : uint8_t {
  kInline,     // no dedicated LWP: idle LWPs + a timer tick poll with timeout 0
  kDedicated,  // bound poller thread blocks in epoll_wait
  kStopped,    // net_poller_stop(): parked waiters fail with ECANCELED
};
std::atomic<Mode> g_mode{Mode::kInline};

// Wake reasons delivered through Tcb::park_result.
enum : uint8_t {
  kWakeReady = 0,
  kWakeCancelled = 1,
};

// Deadline support, same shape as cv_timedwait: whichever of readiness and the
// timer dequeues the waiter first wins; Tcb::block_generation invalidates
// stale timers.
struct NetTimeoutCtx {
  NetPoller::FdEntry* entry;
  Tcb* tcb;
  bool writer;
};

// One ctx per _deadline wait: a 10k-connection server with idle timeouts arms
// one of these per request, so the blocks come from a per-LWP magazine
// (src/util/object_cache.h) and steady state never touches the heap.
struct NetCtxTag {
  static constexpr const char* kName = "net.timeout_ctx";
};
using NetCtxAlloc = CachedAlloc<NetTimeoutCtx, NetCtxTag>;

// fork1() child repair: the poller thread (and every parked waiter) does not
// exist in the child; abandon the parent's poller so the child lazily builds a
// fresh one. The inherited epoll fd leaks, which is the safe direction.
void NetForkChildRepair() {
  g_poller.store(nullptr, std::memory_order_release);
  g_mode.store(Mode::kInline, std::memory_order_release);
  new (&g_poller_create_lock) SpinLock();
}

void EnsureForkHandler() {
  static std::atomic<bool> once{false};
  if (!once.exchange(true, std::memory_order_acq_rel)) {
    Runtime::RegisterForkChildHandler(&NetForkChildRepair);
  }
}

}  // namespace

NetPoller& NetPoller::Get() {
  NetPoller* poller = g_poller.load(std::memory_order_acquire);
  if (poller != nullptr) {
    return *poller;
  }
  SpinLockGuard guard(g_poller_create_lock);
  poller = g_poller.load(std::memory_order_acquire);
  if (poller == nullptr) {
    poller = new NetPoller();  // leaked: parked threads reference it forever
    g_poller.store(poller, std::memory_order_release);
  }
  return *poller;
}

bool NetPoller::Exists() {
  return g_poller.load(std::memory_order_acquire) != nullptr;
}

NetPoller::NetPoller() {
  EnsureForkHandler();
  table_ = new std::atomic<FdEntry*>[kMaxFds]();
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  SUNMT_CHECK(epfd_ >= 0);
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  SUNMT_CHECK(wakeup_fd_ >= 0);
  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  SUNMT_CHECK(epoll_ctl(epfd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) == 0);
  // The scheduler idle-poll hook is owned by the backend layer (backend.cc),
  // which dispatches to whichever engine is live.
}

NetPoller::FdEntry* NetPoller::GetEntry(int fd) const {
  if (fd < 0 || fd >= kMaxFds) {
    return nullptr;
  }
  return table_[fd].load(std::memory_order_acquire);
}

NetPoller::FdEntry* NetPoller::GetOrCreateEntry(int fd) {
  FdEntry* entry = table_[fd].load(std::memory_order_acquire);
  if (entry != nullptr) {
    return entry;
  }
  auto* fresh = new FdEntry();
  FdEntry* expected = nullptr;
  if (table_[fd].compare_exchange_strong(expected, fresh,
                                         std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return expected;
}

// ---- Registration -----------------------------------------------------------

int NetPoller::Register(int fd) {
  if (fd < 0 || fd >= kMaxFds) {
    errno = EBADF;
    return -1;
  }
  int flags = fcntl(fd, F_GETFL);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return -1;
  }
  FdEntry* entry = GetOrCreateEntry(fd);
  SpinLockGuard guard(entry->lock);
  if (entry->registered) {
    return 0;  // idempotent
  }
  struct epoll_event ev = {};
  // Edge-triggered on both directions for the fd's lifetime: re-arming per
  // wait would cost an epoll_ctl system call per park. The sticky `ready`
  // bits plus consumer retry loops absorb the edge semantics.
  ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
  ev.data.fd = fd;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return -1;  // e.g. EPERM: regular files are not pollable
  }
  entry->registered = true;
  // A just-registered fd may already be readable/writable; with EPOLLET that
  // edge may never fire again, so start pessimistically ready and let the
  // first EAGAIN clear the bits.
  entry->ready = NET_READABLE | NET_WRITABLE;
  registered_count_.fetch_add(1, std::memory_order_relaxed);
  if (fd >= fd_highwater_.load(std::memory_order_relaxed)) {
    fd_highwater_.store(fd + 1, std::memory_order_relaxed);
  }
  return 0;
}

int NetPoller::Unregister(int fd) {
  FdEntry* entry = GetEntry(fd);
  if (entry == nullptr) {
    errno = EBADF;
    return -1;
  }
  Tcb* wake_head = nullptr;
  Tcb* wake_tail = nullptr;
  {
    SpinLockGuard guard(entry->lock);
    if (!entry->registered) {
      errno = EBADF;
      return -1;
    }
    epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    entry->registered = false;
    entry->ready = 0;
    registered_count_.fetch_sub(1, std::memory_order_relaxed);
    CancelWaitersLocked(entry, &wake_head, &wake_tail);
  }
  WakeChain(wake_head);
  return 0;
}

bool NetPoller::IsRegistered(int fd) const {
  FdEntry* entry = GetEntry(fd);
  if (entry == nullptr) {
    return false;
  }
  SpinLockGuard guard(entry->lock);
  return entry->registered;
}

// ---- Waiter bookkeeping -----------------------------------------------------

// Pops every waiter from `q` onto the wake chain. Entry lock held.
void NetPoller::DrainQueueLocked(WaitQueue* q, Tcb** wake_head, Tcb** wake_tail,
                                 uint8_t result) {
  while (q->head != nullptr) {
    Tcb* tcb = WaitqPop(&q->head, &q->tail);
    tcb->park_result = result;
    WaitqPush(wake_head, wake_tail, tcb);
  }
}

void NetPoller::CancelWaitersLocked(FdEntry* entry, Tcb** wake_head,
                                    Tcb** wake_tail) {
  DrainQueueLocked(&entry->readers, wake_head, wake_tail, kWakeCancelled);
  DrainQueueLocked(&entry->writers, wake_head, wake_tail, kWakeCancelled);
}

// Wakes a chain built by DrainQueueLocked, outside any entry lock. Must
// capture wait_next before Wake: a woken thread may immediately re-park and
// reuse the link.
void NetPoller::WakeChain(Tcb* head) {
  while (head != nullptr) {
    Tcb* next = head->wait_next;
    head->wait_next = nullptr;
    sched::WakeFdWaiter(head);
    head = next;
  }
}

// ---- Event dispatch ---------------------------------------------------------

void NetPoller::DispatchEvent(int fd, uint32_t epoll_events, Tcb** wake_head,
                              Tcb** wake_tail) {
  FdEntry* entry = GetEntry(fd);
  if (entry == nullptr) {
    return;
  }
  uint32_t ready = 0;
  // Errors and hangups make both directions "ready": the retried syscall is
  // what reports the actual condition (EOF, ECONNRESET, EPIPE, ...).
  if ((epoll_events & (EPOLLIN | EPOLLPRI | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
    ready |= NET_READABLE;
  }
  if ((epoll_events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) != 0) {
    ready |= NET_WRITABLE;
  }
  if (ready == 0) {
    return;
  }
  SpinLockGuard guard(entry->lock);
  entry->ready |= ready;
  if ((ready & NET_READABLE) != 0) {
    DrainQueueLocked(&entry->readers, wake_head, wake_tail, kWakeReady);
  }
  if ((ready & NET_WRITABLE) != 0) {
    DrainQueueLocked(&entry->writers, wake_head, wake_tail, kWakeReady);
  }
}

int NetPoller::PollOnce(int timeout_ms) {
  struct epoll_event events[kEventBatch];
  int n;
  do {
    n = epoll_wait(epfd_, events, kEventBatch, timeout_ms);
  } while (n < 0 && errno == EINTR && timeout_ms == 0);
  if (n < 0) {
    return errno == EINTR ? 0 : -1;
  }
  if (n > 0 && Stats::Enabled()) {
    Stats::RecordValue(LatencyStat::kNetEpollBatch, static_cast<uint64_t>(n));
  }
  Tcb* wake_head = nullptr;
  Tcb* wake_tail = nullptr;
  int woken = 0;
  for (int i = 0; i < n; ++i) {
    int fd = events[i].data.fd;
    if (fd == wakeup_fd_) {
      uint64_t token;
      while (read(wakeup_fd_, &token, sizeof(token)) > 0) {
      }
      continue;
    }
    DispatchEvent(fd, events[i].events, &wake_head, &wake_tail);
  }
  for (Tcb* t = wake_head; t != nullptr; t = t->wait_next) {
    ++woken;
  }
  WakeChain(wake_head);
  return woken;
}

void NetPoller::Kick() {
  uint64_t one = 1;
  (void)!write(wakeup_fd_, &one, sizeof(one));
}

// ---- Parking ----------------------------------------------------------------

namespace {

// Timer-engine callback when a deadline expires before readiness.
void NetTimeoutFire(void* cookie, uint64_t generation) {
  auto* ctx = static_cast<NetTimeoutCtx*>(cookie);
  NetPoller::FdEntry* entry = ctx->entry;
  Tcb* tcb = ctx->tcb;
  bool writer = ctx->writer;
  NetCtxAlloc::Delete(ctx);
  Tcb* to_wake = nullptr;
  {
    SpinLockGuard guard(entry->lock);
    NetPoller::WaitQueue& q = writer ? entry->writers : entry->readers;
    // Only touch the TCB if it is still parked here (queued => alive) and this
    // is still the same wait (generation match). Validate before removing: a
    // stale timer must leave the queue untouched — remove-then-restore would
    // re-push the current waiter at the tail (losing its FIFO position) and,
    // worse, the restore's push would advance its block-generation so its own
    // live timer could never match again.
    if (WaitqContains(q.head, tcb) && tcb->block_generation == generation) {
      WaitqRemove(&q.head, &q.tail, tcb);
      tcb->timed_out = true;
      to_wake = tcb;
    }
  }
  // Ack BEFORE the wake: the fire is done with the fd entry (lock released),
  // and the TCB is alive in both cases — a matched waiter is still parked until
  // the wake below; a stale fire's waiter is spinning in WaitqAwaitTimeoutFire
  // for exactly this ack, so the entry cannot be unregistered under us either.
  tcb->timeout_fire_seq.fetch_add(1, std::memory_order_release);
  if (to_wake != nullptr) {
    sched::WakeFdWaiter(to_wake);
  }
}

}  // namespace

int NetPoller::WaitReady(int fd, uint32_t events, int64_t timeout_ns) {
  SUNMT_DCHECK(events == NET_READABLE || events == NET_WRITABLE);
  // Schedule perturbation only: a *spurious* ready here would be illegal for
  // net_connect (it reads SO_ERROR on 0), so the fault variant lives at the
  // read/write/accept retry loops instead.
  inject::Perturb(inject::kNetWaitReady);
  FdEntry* entry = GetEntry(fd);
  if (entry == nullptr) {
    return EBADF;
  }
  Tcb* self = sched::CurrentTcbOrAdopt();
  int64_t wait_start = SyncWaitStartNs();
  entry->lock.Lock();
  if (!entry->registered) {
    entry->lock.Unlock();
    return EBADF;
  }
  if (g_mode.load(std::memory_order_acquire) == Mode::kStopped) {
    entry->lock.Unlock();
    return ECANCELED;
  }
  if ((entry->ready & events) != 0) {
    // A readiness edge arrived since the caller's last EAGAIN: consume the
    // latch and let the caller retry the syscall instead of parking.
    entry->ready &= ~events;
    entry->lock.Unlock();
    return 0;
  }
  if (timeout_ns == 0) {
    entry->lock.Unlock();
    return ETIME;
  }
  bool writer = (events == NET_WRITABLE);
  WaitQueue& q = writer ? entry->writers : entry->readers;
  self->timed_out = false;
  WaitqPush(&q.head, &q.tail, self);  // advances block_generation
  uint64_t generation = self->block_generation;
  parked_count_.fetch_add(1, std::memory_order_release);
  // Arm the deadline while still holding the entry lock: the fire path needs
  // the lock too, so it cannot touch a half-enqueued waiter.
  timer_id_t timer = kInvalidTimerId;
  NetTimeoutCtx* ctx = nullptr;
  uint64_t fire_seq = self->timeout_fire_seq.load(std::memory_order_relaxed);
  if (timeout_ns > 0) {
    ctx = NetCtxAlloc::New(entry, self, writer);
    timer = timer_arm_callback(timeout_ns, &NetTimeoutFire, ctx, generation);
  }
  if (g_mode.load(std::memory_order_acquire) == Mode::kInline) {
    ArmInlineTick();
  }
  sched::ParkOnFd(&entry->lock, fd, static_cast<uint8_t>(events));
  parked_count_.fetch_sub(1, std::memory_order_release);
  SyncWaitEndNs(LatencyStat::kNetReadinessWait, TraceEvent::kNetWake, self->id,
                wait_start);
  if (self->timed_out) {
    return ETIME;  // the fire path owns and already freed ctx
  }
  if (timer != kInvalidTimerId) {
    if (timer_cancel(timer) == 0) {
      NetCtxAlloc::Delete(ctx);  // cancelled before firing: the fire never ran
    } else {
      // The cancel lost the race: the in-flight callback owns and frees ctx,
      // sees us gone from the queue — or a mismatched generation — and does
      // not wake us. But it still locks the fd entry to find that out, so wait
      // for its ack before returning (after which the fd may be unregistered).
      WaitqAwaitTimeoutFire(self, fire_seq);
    }
  }
  return self->park_result == kWakeCancelled ? ECANCELED : 0;
}

// ---- Dedicated mode ---------------------------------------------------------

void NetPoller::DedicatedLoop(void* arg) {
  auto* poller = static_cast<NetPoller*>(arg);
  thread_setname(0, "netpoller");
  while (!poller->stopping_.load(std::memory_order_acquire)) {
    // The poller thread is bound, so this indefinite kernel wait parks its own
    // LWP only — the pool keeps running application threads, and the
    // SIGWAITING watchdog (which inspects pool LWPs) is unaffected.
    KernelWaitScope wait(/*indefinite=*/true);
    int woken = poller->PollOnce(/*timeout_ms=*/-1);
    if (woken < 0) {
      break;  // epoll fd destroyed under us (should not happen)
    }
  }
}

int NetPoller::StartDedicated() {
  SpinLockGuard guard(lifecycle_lock_);
  if (dedicated_running_.load(std::memory_order_acquire)) {
    return 0;
  }
  stopping_.store(false, std::memory_order_release);
  g_mode.store(Mode::kDedicated, std::memory_order_release);
  thread_id_t id = thread_create(nullptr, 0, &NetPoller::DedicatedLoop, this,
                                 THREAD_BIND_LWP | THREAD_WAIT);
  if (id == kInvalidThreadId) {
    g_mode.store(Mode::kInline, std::memory_order_release);
    errno = EAGAIN;
    return -1;
  }
  dedicated_thread_ = id;
  dedicated_running_.store(true, std::memory_order_release);
  return 0;
}

int NetPoller::Stop() {
  SpinLockGuard guard(lifecycle_lock_);
  g_mode.store(Mode::kStopped, std::memory_order_release);
  if (dedicated_running_.load(std::memory_order_acquire)) {
    stopping_.store(true, std::memory_order_release);
    Kick();
    thread_wait(dedicated_thread_);
    dedicated_running_.store(false, std::memory_order_release);
    dedicated_thread_ = 0;
  }
  // Wake everyone still parked; their WaitReady returns ECANCELED.
  int highwater = fd_highwater_.load(std::memory_order_acquire);
  for (int fd = 0; fd < highwater; ++fd) {
    FdEntry* entry = table_[fd].load(std::memory_order_acquire);
    if (entry == nullptr) {
      continue;
    }
    Tcb* wake_head = nullptr;
    Tcb* wake_tail = nullptr;
    {
      SpinLockGuard entry_guard(entry->lock);
      CancelWaitersLocked(entry, &wake_head, &wake_tail);
    }
    WakeChain(wake_head);
  }
  return 0;
}

bool NetPoller::Running() const {
  Mode mode = g_mode.load(std::memory_order_acquire);
  if (mode == Mode::kStopped) {
    return false;
  }
  if (mode == Mode::kDedicated) {
    return dedicated_running_.load(std::memory_order_acquire);
  }
  return registered_count_.load(std::memory_order_relaxed) > 0;
}

// ---- Inline fallback --------------------------------------------------------

int NetPoller::PollInline() {
  if (g_mode.load(std::memory_order_acquire) != Mode::kInline ||
      parked_count_.load(std::memory_order_acquire) == 0) {
    return -1;  // nothing to do: deep-park is fine
  }
  // One inline poller at a time; contenders report "polled nothing" so their
  // LWP stays in the shallow ParkFor loop and can take over next period.
  if (inline_poll_busy_.exchange(1, std::memory_order_acquire) != 0) {
    return 0;
  }
  int woken = PollOnce(/*timeout_ms=*/0);
  inline_poll_busy_.store(0, std::memory_order_release);
  return woken < 0 ? 0 : woken;
}

int NetPoller::IdlePollHook() {
  NetPoller* poller = g_poller.load(std::memory_order_acquire);
  if (poller == nullptr) {
    return -1;
  }
  return poller->PollInline();
}

int64_t NetPoller::IdlePollPeriodNs() { return kInlinePollPeriodNs; }

// Timer-engine backstop for inline mode: idle LWPs poll opportunistically, but
// if every LWP is busy running compute threads nobody reaches the idle path —
// this tick keeps parked net waiters from starving. Armed ONCE as a periodic
// timer while waiters exist: the old shape re-armed a fresh one-shot per
// millisecond, which is exactly the arm/cancel churn the sharded timer wheel
// exists to avoid paying for.
void NetPoller::InlineTick(void* cookie, uint64_t) {
  auto* poller = static_cast<NetPoller*>(cookie);
  poller->PollInline();
  if (g_mode.load(std::memory_order_acquire) == Mode::kInline &&
      poller->parked_count_.load(std::memory_order_acquire) > 0) {
    return;  // still needed: the periodic re-fires on its own
  }
  // Nothing left to back-stop: disarm from inside our own fire. The exchange
  // closes the window where ArmInlineTick has armed the timer but not yet
  // published its id — in that case skip the disarm and let the next fire
  // retry with the id visible.
  uint64_t id = poller->inline_tick_timer_.exchange(0, std::memory_order_acq_rel);
  if (id == 0) {
    return;
  }
  timer_cancel(id);  // our own in-flight fire: -1, suppresses the re-arm
  poller->inline_tick_armed_.store(false, std::memory_order_release);
  // A waiter may have parked between the check above and the disarm; re-check
  // so it cannot be stranded with no backstop armed.
  if (g_mode.load(std::memory_order_acquire) == Mode::kInline &&
      poller->parked_count_.load(std::memory_order_acquire) > 0) {
    poller->ArmInlineTick();
  }
}

void NetPoller::ArmInlineTick() {
  if (inline_tick_armed_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  inline_tick_timer_.store(
      timer_arm_callback_periodic(kInlinePollPeriodNs, kInlinePollPeriodNs,
                                  &NetPoller::InlineTick, this, 0),
      std::memory_order_release);
}

}  // namespace sunmt
