// Engine selection and shared glue: reads SUNMT_NET_BACKEND once at first
// use, probes io_uring when asked for, and owns the scheduler idle-poll hook
// (installed once, dispatching to whichever engine is live — the hook used to
// be wired directly to NetPoller, which would leave the uring engine's inline
// mode without an idle path).

#include "src/net/backend.h"

#include <errno.h>
#include <stdlib.h>
#include <string.h>

#include <atomic>
#include <new>

#include "src/core/runtime.h"
#include "src/core/scheduler.h"
#include "src/net/poller.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

std::atomic<NetBackend*> g_backend{nullptr};
SpinLock g_backend_lock;

// fork1() child repair: the active engine's threads (reaper/poller) and ring
// state belong to the parent — and the engine singletons run their own repair,
// so a stale g_backend here would dispatch the child into an abandoned
// instance (sharing its io_uring CQ with the parent's reaper). Drop the
// selection; the child's first net op re-selects and re-probes fresh.
void BackendForkChildRepair() {
  g_backend.store(nullptr, std::memory_order_release);
  new (&g_backend_lock) SpinLock();
}

void EnsureForkHandler() {
  static std::atomic<bool> once{false};
  if (!once.exchange(true, std::memory_order_acq_rel)) {
    Runtime::RegisterForkChildHandler(&BackendForkChildRepair);
  }
}

// Worst-case inline-mode wake latency; both engines use the same period so
// the scheduler's shallow-park cadence does not depend on the engine.
constexpr int64_t kIdlePollPeriodNs = 1 * 1000 * 1000;

int IdlePollDispatch() {
  NetBackend* backend = g_backend.load(std::memory_order_acquire);
  if (backend == nullptr) {
    return -1;  // no engine yet: deep-park is fine
  }
  return backend->PollInline();
}

void EnsureIdleHook() {
  static std::atomic<bool> once{false};
  if (!once.exchange(true, std::memory_order_acq_rel)) {
    sched::SetIdlePollHook(&IdlePollDispatch, kIdlePollPeriodNs);
  }
}

// Resolves the configured engine. "uring" degrades to epoll when the kernel
// cannot run it — same binary, zero configuration, which is the fallback
// matrix docs/internals.md documents.
NetBackend* SelectFromEnv() {
  const char* name = getenv("SUNMT_NET_BACKEND");
  if (name != nullptr && strcmp(name, "uring") == 0) {
    NetBackend* uring = NetUringBackendGet();
    if (uring != nullptr) {
      return uring;
    }
  }
  return NetEpollBackendGet();
}

}  // namespace

NetBackend& net_backend() {
  NetBackend* backend = g_backend.load(std::memory_order_acquire);
  if (backend != nullptr) {
    return *backend;
  }
  SpinLockGuard guard(g_backend_lock);
  backend = g_backend.load(std::memory_order_acquire);
  if (backend == nullptr) {
    backend = SelectFromEnv();
    EnsureIdleHook();
    EnsureForkHandler();
    g_backend.store(backend, std::memory_order_release);
  }
  return *backend;
}

bool net_backend_exists() {
  return g_backend.load(std::memory_order_acquire) != nullptr;
}

const char* net_backend_name() { return net_backend().Name(); }

bool net_uring_supported() { return NetUringBackendGet() != nullptr; }

int net_backend_select(const char* name) {
  NetBackend* target = nullptr;
  if (name != nullptr && strcmp(name, "epoll") == 0) {
    target = NetEpollBackendGet();
  } else if (name != nullptr && strcmp(name, "uring") == 0) {
    target = NetUringBackendGet();
    if (target == nullptr) {
      errno = ENOSYS;
      return -1;
    }
  } else {
    errno = EINVAL;
    return -1;
  }
  SpinLockGuard guard(g_backend_lock);
  NetBackend* current = g_backend.load(std::memory_order_acquire);
  if (current != nullptr && current != target) {
    // Registered fds and parked waiters live inside one engine; switching
    // under them would strand both. Quiescent means: dedicated loop stopped,
    // nothing registered, nobody parked.
    NetBackendStats stats;
    current->Snapshot(&stats);
    if (current->Running() || stats.registered > 0 || stats.parked > 0) {
      errno = EBUSY;
      return -1;
    }
  }
  EnsureIdleHook();
  EnsureForkHandler();
  g_backend.store(target, std::memory_order_release);
  return 0;
}

bool net_backend_snapshot(NetBackendStats* out) {
  NetBackend* backend = g_backend.load(std::memory_order_acquire);
  if (backend == nullptr) {
    return false;
  }
  backend->Snapshot(out);
  return true;
}

}  // namespace sunmt
