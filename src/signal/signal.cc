#include "src/signal/signal.h"

#include <unistd.h>

#include <atomic>

#include "src/arch/context.h"
#include "src/core/runtime.h"
#include "src/core/scheduler.h"
#include "src/core/trace.h"
#include "src/core/tcb.h"
#include "src/lwp/lwp.h"
#include "src/util/check.h"
#include "src/util/spinlock.h"

namespace sunmt {
namespace {

enum class DefaultAction : uint8_t { kExit, kIgnore, kStop, kContinue };

DefaultAction DefaultActionFor(int sig) {
  switch (sig) {
    case SIG_CHLD:
    case SIG_IO:
    case SIG_WAITING:  // "the default handling for SIGWAITING is to ignore it"
      return DefaultAction::kIgnore;
    case SIG_STOP:
      return DefaultAction::kStop;
    case SIG_CONT:
      return DefaultAction::kContinue;
    default:
      return DefaultAction::kExit;
  }
}

struct SignalState {
  SpinLock lock;
  SignalHandler handlers[SIG_MAX + 1] = {};
  std::atomic<sigset64_t> process_pending{0};
  std::atomic<uint64_t> coalesced{0};
};

SignalState& State() {
  static SignalState state;
  return state;
}

bool ValidSig(int sig) { return sig >= 1 && sig <= SIG_MAX; }

void DeliverPending(Tcb* self);

void DeliveryHook(Tcb* self) { DeliverPending(self); }

// fork1() child repair: drop the (plain-array) state lock if a parent thread
// held it at fork. Handlers and pending sets are preserved, matching fork
// semantics for signal dispositions.
void SignalForkChildRepair() { State().lock.Unlock(); }

void EnsureInit() {
  static std::atomic<bool> once{false};
  if (!once.exchange(true, std::memory_order_acq_rel)) {
    sched::SetSignalDeliveryHook(&DeliveryHook);
    Runtime::RegisterForkChildHandler(&SignalForkChildRepair);
  }
}

// Marks `sig` pending on `tcb`; counts a coalesced signal if it already was.
void PendOnThread(Tcb* tcb, int sig) {
  uint64_t old = tcb->pending_signals.fetch_or(SigBit(sig), std::memory_order_acq_rel);
  if ((old & SigBit(sig)) != 0) {
    State().coalesced.fetch_add(1, std::memory_order_relaxed);
  }
}

// SIG_DFL actions "affect all the threads in the receiving process".
void RunDefaultAction(Tcb* self, int sig) {
  switch (DefaultActionFor(sig)) {
    case DefaultAction::kIgnore:
      return;
    case DefaultAction::kExit:
      _exit(128 + sig);
    case DefaultAction::kStop: {
      Runtime& rt = Runtime::Get();
      // Stop every other thread first, then ourselves.
      std::vector<ThreadId> ids;
      rt.ForEachThread([&](Tcb* t) {
        if (t != self) {
          ids.push_back(t->id);
        }
      });
      for (ThreadId id : ids) {
        thread_stop(id);
      }
      sched::StopSelf();
      return;
    }
    case DefaultAction::kContinue: {
      Runtime& rt = Runtime::Get();
      std::vector<ThreadId> ids;
      rt.ForEachThread([&](Tcb* t) { ids.push_back(t->id); });
      for (ThreadId id : ids) {
        thread_continue(id);
      }
      return;
    }
  }
}

// Alternate-stack dispatch: the handler runs on the bound thread's installed
// alternate stack via a fresh context; control returns here afterwards.
struct AltStackRun {
  SignalHandler handler;
  int sig;
  Context* back;
  Context alt;
};

void AltStackEntry(void* arg) {
  auto* run = static_cast<AltStackRun*>(arg);
  run->handler(run->sig);
  run->alt.SwitchTo(*run->back, nullptr);
  SUNMT_PANIC("alternate-stack handler context resumed after completion");
}

void RunHandler(Tcb* self, SignalHandler handler, int sig) {
  Lwp* lwp = self->bound_lwp;
  if (lwp == nullptr || !lwp->has_alt_stack.load(std::memory_order_acquire) ||
      self->on_alt_stack) {
    handler(sig);
    return;
  }
  // Bound thread with an alternate stack installed: run the handler there.
  Context back;
  AltStackRun run{handler, sig, &back, {}};
  run.alt.Make(lwp->alt_stack_base, lwp->alt_stack_size, &AltStackEntry);
  self->on_alt_stack = true;
  back.SwitchTo(run.alt, &run);
  self->on_alt_stack = false;
}

// Runs the installed disposition for one signal on the current thread, with the
// signal masked for the handler's duration (the per-thread mask is exactly what
// lets "a thread block some signals while it uses state that is also modified by
// a signal handler").
void DispatchOne(Tcb* self, int sig) {
  Trace::Record(TraceEvent::kSignal, self->id, static_cast<uint64_t>(sig));
  SignalHandler handler;
  {
    SpinLockGuard guard(State().lock);
    handler = State().handlers[sig];
  }
  if (handler == SIG_IGNORE) {
    return;
  }
  if (handler == SIG_DEFAULT) {
    RunDefaultAction(self, sig);
    return;
  }
  uint64_t saved = self->sigmask.fetch_or(SigBit(sig), std::memory_order_acq_rel);
  RunHandler(self, handler, sig);
  if ((saved & SigBit(sig)) == 0) {
    self->sigmask.fetch_and(~SigBit(sig), std::memory_order_acq_rel);
  }
}

void DeliverPending(Tcb* self) {
  if (self->handling_signal) {
    return;  // serial handling per thread
  }
  self->handling_signal = true;
  for (;;) {
    uint64_t deliverable = self->pending_signals.load(std::memory_order_acquire) &
                           ~self->sigmask.load(std::memory_order_acquire);
    if (deliverable == 0) {
      break;
    }
    int sig = __builtin_ctzll(deliverable) + 1;
    self->pending_signals.fetch_and(~SigBit(sig), std::memory_order_acq_rel);
    DispatchOne(self, sig);
  }
  self->handling_signal = false;
}

// Claims process-pending signals that `tcb`'s (new) mask allows and moves them
// to the thread. Call after unmasking.
void ClaimProcessPending(Tcb* tcb) {
  SignalState& s = State();
  uint64_t mask = tcb->sigmask.load(std::memory_order_acquire);
  for (;;) {
    uint64_t pending = s.process_pending.load(std::memory_order_acquire);
    uint64_t claim = pending & ~mask;
    if (claim == 0) {
      return;
    }
    if (s.process_pending.compare_exchange_weak(pending, pending & ~claim,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      tcb->pending_signals.fetch_or(claim, std::memory_order_acq_rel);
      return;
    }
  }
}

void SigwaitingRuntimeHook(void* cookie) {
  (void)cookie;
  signal_raise_process(SIG_WAITING);
}

}  // namespace

SignalHandler signal_handler_set(int sig, SignalHandler handler) {
  SUNMT_CHECK(ValidSig(sig));
  EnsureInit();
  SpinLockGuard guard(State().lock);
  SignalHandler old = State().handlers[sig];
  State().handlers[sig] = handler;
  return old;
}

SignalHandler signal_handler_get(int sig) {
  SUNMT_CHECK(ValidSig(sig));
  SpinLockGuard guard(State().lock);
  return State().handlers[sig];
}

int thread_sigsetmask(int how, const sigset64_t* set, sigset64_t* oset) {
  EnsureInit();
  Tcb* self = sched::CurrentTcbOrAdopt();
  uint64_t old = self->sigmask.load(std::memory_order_acquire);
  if (oset != nullptr) {
    *oset = old;
  }
  if (set == nullptr) {
    return 0;
  }
  switch (how) {
    case SIGMASK_BLOCK:
      self->sigmask.fetch_or(*set, std::memory_order_acq_rel);
      break;
    case SIGMASK_UNBLOCK:
      self->sigmask.fetch_and(~*set, std::memory_order_acq_rel);
      break;
    case SIGMASK_SETMASK:
      self->sigmask.store(*set, std::memory_order_release);
      break;
    default:
      return -1;
  }
  // "If all threads mask a signal, it will pend on the process until a thread
  // unmasks that signal" — so unmasking claims anything now deliverable.
  ClaimProcessPending(self);
  sched::SafePoint();
  return 0;
}

int thread_kill(thread_id_t thread_id, int sig) {
  if (!ValidSig(sig)) {
    return -1;
  }
  EnsureInit();
  Runtime& rt = Runtime::Get();
  Tcb* self = sched::CurrentTcbOrAdopt();
  bool found = rt.WithThread(thread_id, [sig](Tcb* target) { PendOnThread(target, sig); });
  if (!found) {
    return -1;
  }
  if (thread_id == self->id) {
    sched::SafePoint();  // self-directed: behave like a trap, deliver now
  }
  return 0;
}

int sigsend(int id_type, thread_id_t id, int sig) {
  if (!ValidSig(sig)) {
    return -1;
  }
  EnsureInit();
  if (id_type == P_THREAD) {
    return thread_kill(id, sig);
  }
  if (id_type != P_THREAD_ALL) {
    return -1;
  }
  Runtime& rt = Runtime::Get();
  rt.ForEachThread([sig](Tcb* t) { PendOnThread(t, sig); });
  sched::SafePoint();
  return 0;
}

int signal_raise_process(int sig) {
  if (!ValidSig(sig)) {
    return -1;
  }
  EnsureInit();
  // "An interrupt may be handled by any thread that has it enabled in its signal
  // mask. If more than one thread is enabled to receive the interrupt, only one
  // is chosen."
  // Early-exit registry scan: stop at the first enabled thread instead of
  // walking every shard (the common case finds one in the first shard).
  Tcb* chosen = nullptr;
  Runtime& rt = Runtime::Get();
  rt.AnyThread([&](Tcb* t) {
    if ((t->sigmask.load(std::memory_order_acquire) & SigBit(sig)) == 0) {
      chosen = t;
      return true;
    }
    return false;
  });
  if (chosen != nullptr) {
    PendOnThread(chosen, sig);
  } else {
    uint64_t old = State().process_pending.fetch_or(SigBit(sig), std::memory_order_acq_rel);
    if ((old & SigBit(sig)) != 0) {
      State().coalesced.fetch_add(1, std::memory_order_relaxed);
    }
  }
  sched::SafePoint();
  return 0;
}

int signal_raise_trap(int sig) {
  if (!ValidSig(sig) || !signal_is_trap(sig)) {
    return -1;
  }
  EnsureInit();
  Tcb* self = sched::CurrentTcbOrAdopt();
  PendOnThread(self, sig);
  sched::SafePoint();  // synchronous: handled by the causing thread, now
  return 0;
}

void signal_poll() {
  EnsureInit();
  Tcb* self = sched::CurrentTcbOrAdopt();
  DeliverPending(self);
}

bool signal_is_trap(int sig) {
  switch (sig) {
    case SIG_ILL:
    case SIG_TRAP:
    case SIG_FPE:
    case SIG_SEGV:
      return true;
    default:
      return false;
  }
}

void signal_enable_sigwaiting() {
  EnsureInit();
  Runtime::Get().SetSigwaitingHook(&SigwaitingRuntimeHook, nullptr);
}

uint64_t signal_coalesced_count() {
  return State().coalesced.load(std::memory_order_relaxed);
}

int signal_altstack(void* base, size_t size) {
  EnsureInit();
  Tcb* self = sched::CurrentTcbOrAdopt();
  Lwp* lwp = self->bound_lwp;
  if (lwp == nullptr) {
    return -1;  // unbound threads may not use alternate signal stacks
  }
  if (base == nullptr) {
    lwp->has_alt_stack.store(false, std::memory_order_release);
    lwp->alt_stack_base = nullptr;
    lwp->alt_stack_size = 0;
    return 0;
  }
  if (size < 16 * 1024) {
    return -1;
  }
  lwp->alt_stack_base = base;
  lwp->alt_stack_size = size;
  lwp->has_alt_stack.store(true, std::memory_order_release);
  return 0;
}

bool signal_on_altstack() {
  Tcb* self = sched::CurrentTcb();
  return self != nullptr && self->on_alt_stack;
}

}  // namespace sunmt
