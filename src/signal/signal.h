// The multi-threaded signal model.
//
// Semantics reproduced from the paper:
//  * Each thread has its own signal mask; all threads share one vector of
//    per-process signal handlers.
//  * Signals divide into *traps* (caused synchronously by a thread's own
//    execution: SIGILL, SIGFPE, SIGSEGV, ...) handled only by the causing
//    thread, and *interrupts* (asynchronous, from outside) handled by any one
//    thread that has the signal unmasked.
//  * If every thread masks an interrupt it pends on the process until some
//    thread unmasks it. Pending signals do not queue: "the number of signals
//    received by the process is less than or equal to the number sent."
//  * thread_kill() sends a signal to a specific thread in this process; it then
//    behaves like a trap (only that thread may handle it). sigsend() reaches one
//    thread (P_THREAD) or every thread (P_THREAD_ALL).
//  * SIG_DFL / SIG_IGN actions (exit, stop, continue, ignore) affect *all*
//    threads in the process.
//  * SIGWAITING (new) is raised when all the process's LWPs block in indefinite
//    waits; default action is to ignore it (the threads library separately uses
//    the condition to grow the LWP pool).
//
// Substitution note (see DESIGN.md): this is a simulated signal subsystem — the
// delivery policy is the paper's, but signals originate from these APIs rather
// than from the host kernel, and handlers run at scheduling safe points (yields,
// sync operations, package calls, or an explicit signal_poll()). Blocked threads
// receive pending signals when they next run.

#ifndef SUNMT_SRC_SIGNAL_SIGNAL_H_
#define SUNMT_SRC_SIGNAL_SIGNAL_H_

#include <cstdint>

#include "src/core/thread.h"

namespace sunmt {

// Signal numbers (1-based, values match the classic UNIX assignments).
enum : int {
  SIG_HUP = 1,
  SIG_INT = 2,
  SIG_QUIT = 3,
  SIG_ILL = 4,
  SIG_TRAP = 5,
  SIG_ABRT = 6,
  SIG_FPE = 8,
  SIG_USR1 = 10,
  SIG_SEGV = 11,
  SIG_USR2 = 12,
  SIG_PIPE = 13,
  SIG_ALRM = 14,
  SIG_TERM = 15,
  SIG_CHLD = 17,
  SIG_CONT = 18,
  SIG_STOP = 19,
  SIG_IO = 23,
  SIG_XCPU = 24,
  SIG_VTALRM = 26,
  SIG_PROF = 27,
  SIG_WAITING = 32,  // the paper's new signal
  SIG_MAX = 64,
};

using sigset64_t = uint64_t;

constexpr sigset64_t SigBit(int sig) { return sigset64_t{1} << (sig - 1); }

// Handler values. A real handler is any other function pointer.
using SignalHandler = void (*)(int sig);
SignalHandler const SIG_DEFAULT = reinterpret_cast<SignalHandler>(0);
SignalHandler const SIG_IGNORE = reinterpret_cast<SignalHandler>(1);

// thread_sigsetmask() `how` values (distinct names: the libc macros SIG_BLOCK
// etc. would collide with any program that also includes <signal.h>).
enum : int {
  SIGMASK_BLOCK = 1,
  SIGMASK_UNBLOCK = 2,
  SIGMASK_SETMASK = 3,
};

// sigsend() id_type values (P_THREAD / P_THREAD_ALL) are shared with waitid()
// and live in src/core/thread.h.

// ---- Handler management (process-wide, shared by all threads) -----------------
// Installs `handler` for `sig` and returns the previous one. Equivalent of
// signal(2): "all threads in the same address space share the set of signal
// handlers."
SignalHandler signal_handler_set(int sig, SignalHandler handler);
SignalHandler signal_handler_get(int sig);

// ---- Per-thread mask ------------------------------------------------------------
// Adjusts the calling thread's signal mask; `set` may be null to just query.
// Unmasking checks the process-pending set and claims anything deliverable.
// Returns 0, or -1 for a bad `how`.
int thread_sigsetmask(int how, const sigset64_t* set, sigset64_t* oset);

// ---- Sending ----------------------------------------------------------------------
// Sends `sig` to a specific thread in this process (trap-like: only that thread
// handles it). Returns 0, or -1 if the thread does not exist. Threads in other
// processes are unreachable by design ("threads in other processes are invisible").
int thread_kill(thread_id_t thread_id, int sig);

// sigsend(): P_THREAD sends to the thread `id`; P_THREAD_ALL to all threads.
int sigsend(int id_type, thread_id_t id, int sig);

// Raises a process-directed interrupt: one thread with the signal unmasked is
// chosen; if all mask it, it pends on the process.
int signal_raise_process(int sig);

// Raises a synchronous trap on the calling thread (e.g. the FP-overflow example:
// "a floating-point overflow trap applies to a particular thread"). Delivered
// immediately if unmasked, else pends on the thread.
int signal_raise_trap(int sig);

// ---- Delivery --------------------------------------------------------------------
// Explicit safe point: delivers any pending, unmasked signals to the caller.
// (Delivery also happens automatically at scheduling safe points.)
void signal_poll();

// True if `sig` is a trap (synchronous) rather than an interrupt.
bool signal_is_trap(int sig);

// Connects SIGWAITING to the runtime's watchdog so that the library's pool
// growth also raises a observable SIG_WAITING to the process. Idempotent.
void signal_enable_sigwaiting();

// Count of process-pending signals dropped due to coalescing (for tests:
// verifies "received <= sent").
uint64_t signal_coalesced_count();

// ---- Alternate signal stacks (bound threads only) -----------------------------
// "Threads bound to LWPs may use alternate stacks as this state is associated
// with each LWP"; unbound threads may not ("deemed too expensive"). Installs
// [base, base+size) as the calling bound thread's handler stack; base == nullptr
// disables. Returns 0, or -1 if the calling thread is unbound or size is too
// small (< 16 KiB).
int signal_altstack(void* base, size_t size);

// True while the caller is executing a handler on its alternate stack.
bool signal_on_altstack();

}  // namespace sunmt

#endif  // SUNMT_SRC_SIGNAL_SIGNAL_H_
