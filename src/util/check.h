// Lightweight runtime assertion and fatal-error support for sunmt.
//
// SUNMT_CHECK(cond)   — always-on invariant check; aborts with a message on failure.
// SUNMT_DCHECK(cond)  — debug-only invariant check (compiled out when NDEBUG).
// sunmt::Panic(...)   — print a fatal message and abort.
//
// These are deliberately allocation-free on the failure path (the threads package
// must work before and independently of any user allocator, one of the paper's
// explicit design principles).

#ifndef SUNMT_SRC_UTIL_CHECK_H_
#define SUNMT_SRC_UTIL_CHECK_H_

namespace sunmt {

// Prints "panic: <msg> (<file>:<line>)" to stderr using only async-signal-safe
// primitives, then aborts. Never returns.
[[noreturn]] void PanicAt(const char* msg, const char* file, int line);

// Errno-annotated variant: appends "errno=<err>".
[[noreturn]] void PanicErrnoAt(const char* msg, int err, const char* file, int line);

}  // namespace sunmt

#define SUNMT_PANIC(msg) ::sunmt::PanicAt((msg), __FILE__, __LINE__)
#define SUNMT_PANIC_ERRNO(msg, err) ::sunmt::PanicErrnoAt((msg), (err), __FILE__, __LINE__)

#define SUNMT_CHECK(cond)                                          \
  do {                                                             \
    if (__builtin_expect(!(cond), 0)) {                            \
      ::sunmt::PanicAt("check failed: " #cond, __FILE__, __LINE__); \
    }                                                              \
  } while (0)

#ifdef NDEBUG
#define SUNMT_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define SUNMT_DCHECK(cond) SUNMT_CHECK(cond)
#endif

#endif  // SUNMT_SRC_UTIL_CHECK_H_
