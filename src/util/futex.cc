#include "src/util/futex.h"

#include <errno.h>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include "src/inject/inject.h"
#include "src/util/check.h"

namespace sunmt {
namespace {

long FutexSyscall(std::atomic<uint32_t>* addr, int op, uint32_t val,
                  const struct timespec* timeout) {
  return syscall(SYS_futex, reinterpret_cast<uint32_t*>(addr), op, val, timeout, nullptr, 0);
}

}  // namespace

int FutexWait(std::atomic<uint32_t>* addr, uint32_t expected, bool shared, int64_t timeout_ns) {
  int op = FUTEX_WAIT | (shared ? 0 : FUTEX_PRIVATE_FLAG);
  struct timespec ts;
  struct timespec* tsp = nullptr;
  if (timeout_ns >= 0) {
    ts.tv_sec = timeout_ns / 1000000000;
    ts.tv_nsec = timeout_ns % 1000000000;
    tsp = &ts;
  }
  inject::Perturb(inject::kFutexWait);
  // Simulated spurious wakeup: legal per the futex contract (an unrelated
  // FUTEX_WAKE can land any time), so every caller already re-checks its
  // predicate — this exercises those re-check loops.
  if (inject::Fault(inject::kFutexWait)) {
    return 0;
  }
  for (;;) {
    long rc = FutexSyscall(addr, op, expected, tsp);
    if (rc == 0) {
      return 0;
    }
    int err = errno;
    if (err == EAGAIN) {
      return -EAGAIN;
    }
    if (err == ETIMEDOUT) {
      return -ETIMEDOUT;
    }
    if (err == EINTR) {
      continue;  // Retried transparently; callers re-check their predicate anyway.
    }
    SUNMT_PANIC_ERRNO("futex wait failed", err);
  }
}

int FutexWake(std::atomic<uint32_t>* addr, int count, bool shared) {
  inject::Perturb(inject::kFutexWake);
  int op = FUTEX_WAKE | (shared ? 0 : FUTEX_PRIVATE_FLAG);
  long rc = FutexSyscall(addr, op, static_cast<uint32_t>(count), nullptr);
  if (rc < 0) {
    SUNMT_PANIC_ERRNO("futex wake failed", errno);
  }
  return static_cast<int>(rc);
}

}  // namespace sunmt
