// Time sources.
//
// The paper's measurements used the SPARCstation's built-in microsecond real-time
// timer; we use CLOCK_MONOTONIC (nanosecond superset) for benchmarks and
// CLOCK_THREAD_CPUTIME_ID for the per-LWP virtual-time accounting that backs the
// LWP interval timers and getrusage()-style usage sums.

#ifndef SUNMT_SRC_UTIL_CLOCK_H_
#define SUNMT_SRC_UTIL_CLOCK_H_

#include <cstdint>
#include <ctime>

namespace sunmt {

// Monotonic wall-clock nanoseconds.
inline int64_t MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// CPU time consumed by the calling kernel thread (our LWP), in nanoseconds.
inline int64_t ThreadCpuNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// CPU time consumed by the whole process, in nanoseconds.
inline int64_t ProcessCpuNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// Simple elapsed-time stopwatch over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNowNs()) {}

  void Reset() { start_ = MonotonicNowNs(); }
  int64_t ElapsedNs() const { return MonotonicNowNs() - start_; }
  double ElapsedUs() const { return static_cast<double>(ElapsedNs()) / 1e3; }
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) / 1e6; }

 private:
  int64_t start_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_UTIL_CLOCK_H_
