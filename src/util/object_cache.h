// Per-LWP object cache: the Bonwick-magazine pattern, reusable.
//
// The threads package must not call malloc() on its hot paths (the paper's
// explicit design goal, see intrusive_list.h). PR 5 proved the cure on thread
// stacks: every kernel thread (i.e. every LWP) owns a small thread-local
// *magazine*; a locked global *depot* backs all magazines and is touched only
// in batches, so steady-state acquire/release costs one uncontended per-owner
// lock and zero shared-lock round trips. This header extracts that machinery
// into one implementation so every per-operation allocation — timed-wait
// contexts, HTTP connection args, cxx::Thread closures, the stacks themselves
// — shares a single protocol, a single fork-repair path, and a single stats
// format (the OBJCACHE lines in FormatProcessState()).
//
// Two layers:
//
//   * `ObjectCache<T, Traits>` caches *values* of a trivially copyable T
//     (e.g. a stack-mapping record, or a raw block pointer). Acquire() returns
//     false on a cold cache — the caller allocates, and the miss is counted
//     both per cache and in the process-wide fallback-allocation counter that
//     the zero-alloc assertion tests watch. Release() stores the value back,
//     evicting the oldest batch through Traits::Evict when both tiers fill.
//   * `CachedAlloc<T, Tag>` is the `new`/`delete` drop-in built on top: it
//     caches raw heap blocks of sizeof(T) and runs the constructor/destructor
//     per New/Delete, so only the allocation itself is recycled.
//
// Every instantiation registers itself (lock-free, on first use) with a global
// cache list so introspection, Drain sweeps, and the fork1() child repair find
// it without any per-cache wiring. Fork discipline is the same epoch scheme as
// the original stack cache: ObjectCacheResetAfterForkAll() rebuilds each
// depot/registry empty and bumps a global epoch; surviving per-thread
// magazines notice the new epoch on next use (or at thread exit) and abandon
// parent-generation entries instead of double-freeing them.
//
// Traits contract:
//   static constexpr const char* kName;          // stats/introspection name
//   static constexpr size_t kMagazineCapacity;   // per-LWP magazine slots
//   static constexpr size_t kDepotCapacity;      // shared depot slots
//   static constexpr size_t kRefillBatch;        // entries per depot trip
//   static void Evict(T& v);                     // dispose an overflow value
// T must be trivially copyable and default constructible (values move between
// magazine and depot by plain copy, under spinlocks).

#ifndef SUNMT_SRC_UTIL_OBJECT_CACHE_H_
#define SUNMT_SRC_UTIL_OBJECT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "src/inject/inject.h"
#include "src/util/intrusive_list.h"
#include "src/util/spinlock.h"

namespace sunmt {

// Aggregate counters for one cache (monotonic except the depth/count gauges),
// exported as an OBJCACHE line in FormatProcessState() and FormatStats().
struct ObjectCacheStats {
  const char* name = nullptr;
  uint64_t hits = 0;       // Acquire served from a magazine (incl. post-refill)
  uint64_t misses = 0;     // Acquire fell through to the caller's allocator
  uint64_t refills = 0;    // batch refills, depot -> magazine
  uint64_t flushes = 0;    // batch flushes, magazine -> depot
  uint64_t evictions = 0;  // values disposed via Traits::Evict (both tiers full)
  size_t depot_depth = 0;      // entries in the depot right now
  size_t magazine_count = 0;   // live per-LWP magazines
  size_t magazine_depth = 0;   // entries across all magazines right now
};

namespace objcache_internal {

// Control block, one per ObjectCache instantiation, pushed onto a lock-free
// global list at first use. Lock-free on purpose: the fork1() child repair
// walks this list, and a registration lock could have been copied held.
struct CacheNode {
  const char* name;
  void (*drain)();
  void (*reset_after_fork)();
  ObjectCacheStats (*snapshot)();
  void (*retire_thread)();
  CacheNode* next;
};

void Register(CacheNode* node);
CacheNode* Head();

// Arms the calling kernel thread's exit hook (a process-wide pthread TSD
// destructor) so every cache's per-thread magazine is flushed, deregistered
// and folded into the retired counters when the thread exits. The caches use
// this instead of a `thread_local` destructor on purpose: a dynamically
// initialized thread_local carries a compiler-emitted init-guard byte and a
// __cxa_thread_atexit registration, both written without synchronization —
// which two user threads (fibers, distinct threads to TSan) multiplexed on
// the same LWP then touch back to back. pthread TSD keeps thread-exit
// cleanup while every magazine access stays atomic or lock-guarded.
void ArmThreadRetire();

// Bumped by ObjectCacheResetAfterForkAll() so magazines inherited from the
// parent notice they are stale and re-register (abandoning parent-cached
// entries) on next use. One epoch for all caches: fork repair is one event.
extern std::atomic<uint32_t> g_fork_epoch;

// Process-wide count of cache misses that fell back to a real allocation on a
// hot path. The zero-alloc assertion tests snapshot this around steady-state
// churn: a warm cache must not let it move.
extern std::atomic<uint64_t> g_fallback_allocs;

}  // namespace objcache_internal

// Frees everything cached in every registered cache (depots and all threads'
// magazines). For leak-sensitive tests.
void ObjectCacheDrainAll();

// fork1() child-side repair: rebuilds every registered cache's depot and
// magazine registry empty (the child's copies are reachable only here;
// abandoning them is safe) and bumps the fork epoch so surviving thread-local
// magazines lazily re-register with clean state.
void ObjectCacheResetAfterForkAll();

// Snapshots up to `max` registered caches into `out`; returns how many were
// written. Order is reverse registration order (most recently created first).
size_t ObjectCacheSnapshotAll(ObjectCacheStats* out, size_t max);

// Total hot-path fallback allocations across all caches (see g_fallback_allocs).
uint64_t ObjectCacheFallbackAllocs();

template <typename T, typename Traits>
class ObjectCache {
  static_assert(std::is_trivially_copyable_v<T>,
                "cached values move between tiers by plain copy");
  static_assert(Traits::kRefillBatch <= Traits::kMagazineCapacity,
                "a refill must fit in an empty magazine");
  static_assert(Traits::kRefillBatch > 0 && Traits::kDepotCapacity > 0, "");

 public:
  static constexpr size_t kMagazineCapacity = Traits::kMagazineCapacity;
  static constexpr size_t kDepotCapacity = Traits::kDepotCapacity;
  static constexpr size_t kRefillBatch = Traits::kRefillBatch;

  // Pops a cached value into *out. False means the cache is cold here — the
  // caller allocates, and the miss is counted (per cache + process fallback).
  static bool Acquire(T* out) {
    EnsureRegistered();
    Magazine& m = Local();
    m.lock.Lock();
    if (m.count == 0) {
      // Empty magazine: one depot trip buys up to kRefillBatch future hits.
      inject::Perturb(inject::kObjectCache);
      Depot& d = GetDepot();
      SpinLockGuard guard(d.lock);
      size_t take = d.count < kRefillBatch ? d.count : kRefillBatch;
      for (size_t i = 0; i < take; ++i) {
        m.entries[m.count++] = d.entries[--d.count];
      }
      if (take > 0) {
        m.refills++;
      }
    }
    if (m.count > 0) {
      *out = m.entries[--m.count];
      m.hits++;
      m.lock.Unlock();
      return true;
    }
    m.lock.Unlock();
    misses_.fetch_add(1, std::memory_order_relaxed);
    objcache_internal::g_fallback_allocs.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Stores a value back into the calling thread's magazine, flushing the
  // oldest kRefillBatch toward the depot when full (overflow is evicted).
  static void Release(T value) {
    EnsureRegistered();
    Magazine& m = Local();
    SpinLockGuard guard(m.lock);
    if (m.count == kMagazineCapacity) {
      FlushBatchLocked(m, kRefillBatch);
    }
    m.entries[m.count++] = value;
  }

  // Values currently cached: depot + every live magazine (for tests).
  static size_t CachedCount() {
    size_t total;
    {
      Depot& d = GetDepot();
      SpinLockGuard guard(d.lock);
      total = d.count;
    }
    Registry& r = GetRegistry();
    SpinLockGuard guard(r.lock);
    r.magazines.ForEach([&](Magazine* m) {
      SpinLockGuard mguard(m->lock);
      total += m->count;
    });
    return total;
  }

  // Evicts everything cached, including entries sitting in other threads'
  // magazines. Entries are evicted outside the magazine locks.
  static void Drain() {
    // Pull every magazine's entries into the depot first (one place to free
    // from); FlushBatchLocked evicts depot overflow directly.
    {
      Registry& r = GetRegistry();
      SpinLockGuard guard(r.lock);
      r.magazines.ForEach([&](Magazine* m) {
        SpinLockGuard mguard(m->lock);
        FlushBatchLocked(*m, m->count);
      });
    }
    T drained[kDepotCapacity];
    size_t drained_count;
    {
      Depot& d = GetDepot();
      SpinLockGuard guard(d.lock);
      drained_count = d.count;
      for (size_t i = 0; i < drained_count; ++i) {
        drained[i] = d.entries[i];
      }
      d.count = 0;
    }
    evictions_.fetch_add(drained_count, std::memory_order_relaxed);
    for (size_t i = 0; i < drained_count; ++i) {
      Traits::Evict(drained[i]);
    }
  }

  static ObjectCacheStats Snapshot() {
    ObjectCacheStats s;
    s.name = Traits::kName;
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    {
      Depot& d = GetDepot();
      SpinLockGuard guard(d.lock);
      s.depot_depth = d.count;
    }
    Registry& r = GetRegistry();
    SpinLockGuard guard(r.lock);
    s.hits = r.retired_hits;
    s.refills = r.retired_refills;
    s.flushes = r.retired_flushes;
    r.magazines.ForEach([&](Magazine* m) {
      SpinLockGuard mguard(m->lock);
      s.hits += m->hits;
      s.refills += m->refills;
      s.flushes += m->flushes;
      s.magazine_depth += m->count;
      s.magazine_count++;
    });
    return s;
  }

 private:
  // The depot: the shared, locked tier. Touched only on magazine refill/flush
  // (one lock trip per kRefillBatch operations) and by the cold maintenance
  // entry points (Drain/Snapshot/fork repair).
  struct Depot {
    SpinLock lock;
    size_t count = 0;
    T entries[kDepotCapacity];
  };

  // Per-kernel-thread magazine, heap-allocated and published through the
  // thread-local atomic pointer below. The lock is almost always uncontended —
  // only the owning thread takes it on the hot path; Drain/Snapshot/
  // CachedCount take it cross-thread — so steady state costs an uncontended
  // CAS, not a shared-lock round trip. Thread-exit flush + counter folding
  // runs through RetireThreadMagazine (see ArmThreadRetire), not a destructor:
  // the magazine must not be a dynamically initialized thread_local, because
  // its init-guard byte and ctor writes would be unsynchronized state shared
  // by every user thread the owning LWP multiplexes.
  struct Magazine {
    SpinLock lock;
    size_t count = 0;
    uint64_t hits = 0;
    uint64_t refills = 0;
    uint64_t flushes = 0;
    std::atomic<uint32_t> fork_epoch{0};
    T entries[kMagazineCapacity];
    ListNode registry_node;
  };

  // Registry of live magazines so the cold entry points can reach entries
  // cached in other threads' magazines. Counters of destroyed magazines are
  // folded into the retired_* accumulators so Snapshot() stays monotonic.
  struct Registry {
    SpinLock lock;
    IntrusiveList<Magazine, &Magazine::registry_node> magazines;
    uint64_t retired_hits = 0;
    uint64_t retired_refills = 0;
    uint64_t retired_flushes = 0;
  };

  static Depot& GetDepot() {
    static Depot* depot = new Depot;  // leaked: outlives all threads
    return *depot;
  }

  static Registry& GetRegistry() {
    static Registry* reg = new Registry;  // leaked
    return *reg;
  }

  // The calling kernel thread's magazine, created + registered on first use
  // and re-registered after a fork. Registration is the only path where the
  // owner touches the registry lock, and never while holding its own magazine
  // lock. The thread_local itself is a constant-initialized atomic pointer:
  // no init-guard byte, no __cxa_thread_atexit — every access a user thread
  // (fiber) makes through here is an atomic op or happens under a lock, so
  // two fibers sharing this LWP's TLS never touch unsynchronized state. The
  // release/acquire pair orders the heap magazine's construction before any
  // other fiber's first use of it.
  static Magazine& Local() {
    Magazine* m = t_magazine_.load(std::memory_order_acquire);
    uint32_t epoch =
        objcache_internal::g_fork_epoch.load(std::memory_order_acquire);
    if (__builtin_expect(m == nullptr, 0)) {
      m = new Magazine();
      m->fork_epoch.store(epoch, std::memory_order_relaxed);
      {
        Registry& r = GetRegistry();
        SpinLockGuard guard(r.lock);
        r.magazines.PushBack(m);
      }
      objcache_internal::ArmThreadRetire();
      t_magazine_.store(m, std::memory_order_release);
      return *m;
    }
    if (__builtin_expect(
            m->fork_epoch.load(std::memory_order_relaxed) != epoch, 0)) {
      // Inherited across fork1(): the child is single-threaded here, and the
      // parent-generation state is not ours — the lock may carry a locked
      // image, the entries would double-free, and the registry link points
      // into the parent's rebuilt-away list.
      m->lock.Reset();
      m->count = 0;
      m->registry_node = ListNode{};
      m->fork_epoch.store(epoch, std::memory_order_relaxed);
      Registry& r = GetRegistry();
      SpinLockGuard guard(r.lock);
      r.magazines.PushBack(m);
    }
    return *m;
  }

  // Thread-exit path, reached through the registered node by the pthread TSD
  // destructor ArmThreadRetire installed: flush the exiting thread's magazine
  // to the depot, fold its counters into the retired accumulators (keeping
  // Snapshot() monotonic), and free it. A magazine from a pre-fork generation
  // is just freed — its entries and registry link belong to the parent.
  static void RetireThreadMagazine() {
    Magazine* m = t_magazine_.load(std::memory_order_acquire);
    if (m == nullptr) {
      return;
    }
    t_magazine_.store(nullptr, std::memory_order_release);
    uint32_t epoch =
        objcache_internal::g_fork_epoch.load(std::memory_order_acquire);
    if (m->fork_epoch.load(std::memory_order_relaxed) == epoch) {
      {
        SpinLockGuard guard(m->lock);
        FlushBatchLocked(*m, m->count);
      }
      Registry& r = GetRegistry();
      SpinLockGuard guard(r.lock);
      r.magazines.TryRemove(m);
      // Registry-then-magazine, the same order Drain/Snapshot use.
      SpinLockGuard mguard(m->lock);
      r.retired_hits += m->hits;
      r.retired_refills += m->refills;
      r.retired_flushes += m->flushes;
    }
    delete m;
  }

  // Flushes the oldest `n` entries of `m` (owner lock held) toward the depot;
  // entries that do not fit are evicted after both locks drop.
  static void FlushBatchLocked(Magazine& m, size_t n) {
    T overflow[kMagazineCapacity];
    size_t overflow_count = 0;
    if (n > m.count) {
      n = m.count;
    }
    if (n == 0) {
      return;
    }
    inject::Perturb(inject::kObjectCache);
    Depot& d = GetDepot();
    {
      SpinLockGuard guard(d.lock);
      for (size_t i = 0; i < n; ++i) {
        if (d.count < kDepotCapacity) {
          d.entries[d.count++] = m.entries[i];
        } else {
          overflow[overflow_count++] = m.entries[i];
        }
      }
    }
    // Keep the hottest (most recently released) entries: shift survivors down.
    for (size_t i = n; i < m.count; ++i) {
      m.entries[i - n] = m.entries[i];
    }
    m.count -= n;
    m.flushes++;
    evictions_.fetch_add(overflow_count, std::memory_order_relaxed);
    for (size_t i = 0; i < overflow_count; ++i) {
      Traits::Evict(overflow[i]);
    }
  }

  // fork1() child repair for this cache, reached through the registered node.
  // No locks taken: the parent may have forked with any of them held.
  static void ResetAfterFork() {
    Depot& d = GetDepot();
    new (&d.lock) SpinLock();
    d.count = 0;
    Registry& r = GetRegistry();
    new (&r) Registry();
  }

  static void EnsureRegistered() {
    static const bool once = [] {
      static objcache_internal::CacheNode node{
          Traits::kName,         &Drain, &ResetAfterFork, &Snapshot,
          &RetireThreadMagazine, nullptr};
      objcache_internal::Register(&node);
      return true;
    }();
    (void)once;
  }

  // Misses/evictions happen outside any cache lock, so plain atomics.
  inline static std::atomic<uint64_t> misses_{0};
  inline static std::atomic<uint64_t> evictions_{0};

  // This kernel thread's magazine. Constant-initialized (enforced by
  // constinit): the compiler emits a direct TLS access with no guard byte and
  // no thread-atexit registration — see the Local() comment for why that
  // matters when user threads multiplex on LWPs.
  inline static constinit thread_local std::atomic<Magazine*> t_magazine_{
      nullptr};
};

// `new T(...)` / `delete p` drop-in for fixed-size hot-path objects. The
// cached unit is raw storage of sizeof(T); the constructor/destructor run per
// New/Delete, only the underlying allocation is recycled. Tag supplies the
// cache name (distinct tags get distinct caches even at equal block sizes):
//
//   struct CtxTag { static constexpr const char* kName = "sema.timeout_ctx"; };
//   auto* ctx = CachedAlloc<SemaTimeoutCtx, CtxTag>::New(sp, self);
//   ...
//   CachedAlloc<SemaTimeoutCtx, CtxTag>::Delete(ctx);
template <typename T, typename Tag>
class CachedAlloc {
  struct BlockTraits {
    static constexpr const char* kName = Tag::kName;
    static constexpr size_t kMagazineCapacity = 16;
    static constexpr size_t kDepotCapacity = 256;
    static constexpr size_t kRefillBatch = 8;
    static void Evict(void*& p) { ::operator delete(p); }
  };

 public:
  using Cache = ObjectCache<void*, BlockTraits>;

  template <typename... Args>
  static T* New(Args&&... args) {
    void* p = nullptr;
    if (!Cache::Acquire(&p)) {
      p = ::operator new(sizeof(T));
    }
    // Brace-init so aggregates (the timed-wait ctx structs) work unchanged.
    return ::new (p) T{std::forward<Args>(args)...};
  }

  static void Delete(T* obj) {
    obj->~T();
    Cache::Release(static_cast<void*>(obj));
  }
};

}  // namespace sunmt

#endif  // SUNMT_SRC_UTIL_OBJECT_CACHE_H_
