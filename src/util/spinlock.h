// Test-and-test-and-set spinlock with exponential backoff and a kernel-yield
// fallback.
//
// Used for the short critical sections inside the threads package itself (run queue,
// sleep queues, registry). User-facing mutual exclusion is provided by sunmt::Mutex,
// which blocks threads instead of burning the LWP.
//
// The yield fallback matters whenever LWPs outnumber CPUs: the holder of a
// short critical section can be preempted by the kernel mid-section, and a
// pure spin then burns the waiter's entire kernel timeslice (milliseconds)
// before the holder runs again. After a bounded spin the waiter sched_yield()s
// so the holder gets the CPU back promptly.

#ifndef SUNMT_SRC_UTIL_SPINLOCK_H_
#define SUNMT_SRC_UTIL_SPINLOCK_H_

#include <sched.h>

#include <atomic>
#include <cstdint>

#include "src/inject/inject.h"

namespace sunmt {

// CPU-relax hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Bounded exponential backoff for contended CAS loops.
class Backoff {
 public:
  void Pause() {
    for (uint32_t i = 0; i < count_; ++i) {
      CpuRelax();
    }
    if (count_ < kMaxSpin) {
      count_ *= 2;
    }
  }

  void Reset() { count_ = 1; }

 private:
  static constexpr uint32_t kMaxSpin = 1024;
  uint32_t count_ = 1;
};

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    inject::Perturb(inject::kSpinLockAcquire);
    Backoff backoff;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      uint32_t spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < kSpinsBeforeYield) {
          backoff.Pause();
        } else {
          sched_yield();  // holder likely preempted; give it the CPU
        }
      }
    }
  }

  bool TryLock() { return !locked_.exchange(true, std::memory_order_acquire); }

  void Unlock() {
    // Perturbing *before* the releasing store stretches the critical section —
    // the "holder preempted mid-section" schedule the yield fallback exists for.
    inject::Perturb(inject::kSpinLockRelease);
    locked_.store(false, std::memory_order_release);
  }

  bool IsLocked() const { return locked_.load(std::memory_order_relaxed); }

  // Forcibly returns the lock to the released state regardless of history.
  // Only for re-initialization of storage that may hold a stale lock image
  // (e.g. sync-variable *_init on a previously used variable); never a
  // substitute for Unlock().
  void Reset() { locked_.store(false, std::memory_order_release); }

 private:
  // ~30us of backoff-paced spinning before the first yield: longer than any
  // critical section in the package, shorter than a kernel timeslice.
  static constexpr uint32_t kSpinsBeforeYield = 64;

  std::atomic<bool> locked_{false};
};

// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_UTIL_SPINLOCK_H_
