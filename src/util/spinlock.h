// Test-and-test-and-set spinlock with exponential backoff and a kernel-yield
// fallback.
//
// Used for the short critical sections inside the threads package itself (run queue,
// sleep queues, registry). User-facing mutual exclusion is provided by sunmt::Mutex,
// which blocks threads instead of burning the LWP.
//
// The yield fallback matters whenever LWPs outnumber CPUs: the holder of a
// short critical section can be preempted by the kernel mid-section, and a
// pure spin then burns the waiter's entire kernel timeslice (milliseconds)
// before the holder runs again. After a bounded spin the waiter sched_yield()s
// so the holder gets the CPU back promptly.

#ifndef SUNMT_SRC_UTIL_SPINLOCK_H_
#define SUNMT_SRC_UTIL_SPINLOCK_H_

#include <sched.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "src/debug/lockdep.h"
#include "src/inject/inject.h"

namespace sunmt {

// CPU-relax hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Bounded exponential backoff for contended CAS loops.
class Backoff {
 public:
  void Pause() {
    for (uint32_t i = 0; i < count_; ++i) {
      CpuRelax();
    }
    if (count_ < kMaxSpin) {
      count_ *= 2;
    }
  }

  void Reset() { count_ = 1; }

 private:
  static constexpr uint32_t kMaxSpin = 1024;
  uint32_t count_ = 1;
};

class SpinLock {
 public:
  SpinLock() = default;
  // Lockdep hierarchy annotation baked into the lock's class: a lock whose
  // level is strictly higher than everything held may always be acquired
  // (the "declared leaf" idiom, e.g. the TCB state lock). See lockdep.h.
  explicit SpinLock(uint8_t lockdep_level) : ld_level_(lockdep_level) {}
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Lock() {
    inject::Perturb(inject::kSpinLockAcquire);
    if (__builtin_expect(kOwnerTracking || lockdep::Enabled(), 0)) {
      LockDebug();
      return;
    }
    LockLoop();
  }

  bool TryLock() {
    if (locked_.exchange(true, std::memory_order_acquire)) {
      return false;
    }
    if (__builtin_expect(kOwnerTracking || lockdep::Enabled(), 0)) {
      TryLockDebug();
    }
    return true;
  }

  void Unlock() {
    // Perturbing *before* the releasing store stretches the critical section —
    // the "holder preempted mid-section" schedule the yield fallback exists for.
    inject::Perturb(inject::kSpinLockRelease);
    if (__builtin_expect(kOwnerTracking || lockdep::Enabled(), 0)) {
      owner_.store(0, std::memory_order_relaxed);
      if (lockdep::Enabled()) {
        lockdep::OnSpinRelease(this);
      }
    }
    locked_.store(false, std::memory_order_release);
  }

  bool IsLocked() const { return locked_.load(std::memory_order_relaxed); }

  // Forcibly returns the lock to the released state regardless of history.
  // Only for re-initialization of storage that may hold a stale lock image
  // (e.g. sync-variable *_init on a previously used variable); never a
  // substitute for Unlock().
  void Reset() {
    owner_.store(0, std::memory_order_relaxed);
    ld_class_.store(0, std::memory_order_relaxed);
    locked_.store(false, std::memory_order_release);
  }

 private:
#ifdef NDEBUG
  static constexpr bool kOwnerTracking = false;  // runtime opt-in via lockdep
#else
  static constexpr bool kOwnerTracking = true;  // debug builds: always track
#endif

  void LockLoop() {
    Backoff backoff;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      uint32_t spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < kSpinsBeforeYield) {
          backoff.Pause();
        } else {
          sched_yield();  // holder likely preempted; give it the CPU
        }
      }
    }
  }

  // Debug-mode acquire: self-relock would otherwise spin forever silently —
  // report it. Owner identity is the *kernel* thread: a user thread cannot
  // migrate LWPs while holding a spinlock (the one deschedule-with-lock-held
  // path unlocks from the dispatcher on the same kernel thread).
  //
  // Both debug entries are noinline and compute the acquire pc *inside*: since
  // Lock()/TryLock() inline into their callers, the return address of this
  // frame is the precise acquire site, one per call. (Capturing it in the
  // inlined caller would yield the *enclosing function's* return address and
  // merge every spinlock it touches into one lockdep class — two distinct
  // locks nested inside one function then look like same-class nesting.)
  __attribute__((noinline)) void LockDebug() {
    uintptr_t pc = reinterpret_cast<uintptr_t>(__builtin_return_address(0));
    uint32_t self = lockdep::KernelTid();
    if (owner_.load(std::memory_order_relaxed) == self) {
      fprintf(stderr,
              "SUNMT: SpinLock self-relock: kernel thread %u re-acquiring "
              "%p at 0x%lx\n",
              self, static_cast<void*>(this), static_cast<unsigned long>(pc));
      fflush(stderr);
      abort();
    }
    if (lockdep::Enabled()) {
      // Before the spin: an AB/BA spin livelock still gets its report.
      lockdep::OnSpinAcquire(this, &ld_class_, pc, ld_level_, 0);
    }
    LockLoop();
    owner_.store(self, std::memory_order_relaxed);
  }

  __attribute__((noinline)) void TryLockDebug() {
    owner_.store(lockdep::KernelTid(), std::memory_order_relaxed);
    if (lockdep::Enabled()) {
      lockdep::OnSpinAcquire(
          this, &ld_class_,
          reinterpret_cast<uintptr_t>(__builtin_return_address(0)), ld_level_,
          lockdep::kFlagTry);
    }
  }

  // ~30us of backoff-paced spinning before the first yield: longer than any
  // critical section in the package, shorter than a kernel timeslice.
  static constexpr uint32_t kSpinsBeforeYield = 64;

  std::atomic<bool> locked_{false};
  uint8_t ld_level_ = 0;                 // lockdep hierarchy annotation
  std::atomic<uint32_t> owner_{0};       // kernel tid of holder (debug modes)
  std::atomic<uint32_t> ld_class_{0};    // lockdep class id (lazy)
};

// RAII guard for SpinLock.
class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~SpinLockGuard() { lock_.Unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_UTIL_SPINLOCK_H_
