#include "src/util/check.h"

#include <stdlib.h>
#include <string.h>
#include <unistd.h>

namespace sunmt {
namespace {

// write() the whole buffer, ignoring failures: we are already dying.
void RawWrite(const char* s, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(2, s, n);
    if (w <= 0) {
      return;
    }
    s += w;
    n -= static_cast<size_t>(w);
  }
}

void RawWriteCstr(const char* s) { RawWrite(s, strlen(s)); }

// Minimal itoa for the failure path (no snprintf: not async-signal-safe everywhere).
void RawWriteInt(long v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  bool neg = v < 0;
  unsigned long u = neg ? 0ul - static_cast<unsigned long>(v) : static_cast<unsigned long>(v);
  do {
    *--p = static_cast<char>('0' + (u % 10));
    u /= 10;
  } while (u != 0);
  if (neg) {
    *--p = '-';
  }
  RawWrite(p, static_cast<size_t>(buf + sizeof(buf) - p));
}

}  // namespace

void PanicAt(const char* msg, const char* file, int line) {
  RawWriteCstr("sunmt panic: ");
  RawWriteCstr(msg);
  RawWriteCstr(" (");
  RawWriteCstr(file);
  RawWriteCstr(":");
  RawWriteInt(line);
  RawWriteCstr(")\n");
  abort();
}

void PanicErrnoAt(const char* msg, int err, const char* file, int line) {
  RawWriteCstr("sunmt panic: ");
  RawWriteCstr(msg);
  RawWriteCstr(" errno=");
  RawWriteInt(err);
  RawWriteCstr(" (");
  RawWriteCstr(file);
  RawWriteCstr(":");
  RawWriteInt(line);
  RawWriteCstr(")\n");
  abort();
}

}  // namespace sunmt
