// Thin wrapper over the Linux futex(2) system call.
//
// This is the only kernel blocking primitive the whole library uses. The LWP layer
// parks/unparks virtual CPUs with it, and the THREAD_SYNC_SHARED synchronization
// variants use it directly on words placed in shared memory (futexes operate on the
// physical page, so the same variable works across processes even when mapped at
// different virtual addresses — exactly the paper's requirement for synchronization
// variables in shared memory and files).

#ifndef SUNMT_SRC_UTIL_FUTEX_H_
#define SUNMT_SRC_UTIL_FUTEX_H_

#include <atomic>
#include <cstdint>

namespace sunmt {

// Blocks until *addr != expected or a wakeup arrives. Spurious returns allowed.
// `shared` selects cross-process futexes (no FUTEX_PRIVATE_FLAG).
// Returns 0 on wake, -EAGAIN if *addr != expected at call time, -ETIMEDOUT on timeout.
int FutexWait(std::atomic<uint32_t>* addr, uint32_t expected, bool shared = false,
              int64_t timeout_ns = -1);

// Wakes up to `count` waiters. Returns the number woken.
int FutexWake(std::atomic<uint32_t>* addr, int count, bool shared = false);

}  // namespace sunmt

#endif  // SUNMT_SRC_UTIL_FUTEX_H_
