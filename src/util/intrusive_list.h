// Intrusive doubly-linked list.
//
// The threads package must not call malloc() on its hot paths (an explicit design
// goal in the paper: "there should be a method of using threads that does not force
// the threads library to use malloc()"). Queue nodes are therefore embedded in the
// objects themselves (TCBs, LWPs): enqueue/dequeue never allocate.

#ifndef SUNMT_SRC_UTIL_INTRUSIVE_LIST_H_
#define SUNMT_SRC_UTIL_INTRUSIVE_LIST_H_

#include <cstddef>

#include "src/util/check.h"

namespace sunmt {

// Embed one of these per list a type can be on.
struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool IsLinked() const { return next != nullptr; }
};

// FIFO intrusive list of T, where `Node` is a pointer-to-member selecting which
// embedded ListNode to use. Not thread-safe; callers hold their own lock.
template <typename T, ListNode T::* Node>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.next = &head_;
    head_.prev = &head_;
  }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool Empty() const { return head_.next == &head_; }
  size_t Size() const { return size_; }

  void PushBack(T* obj) {
    ListNode* n = &(obj->*Node);
    SUNMT_DCHECK(!n->IsLinked());
    n->prev = head_.prev;
    n->next = &head_;
    head_.prev->next = n;
    head_.prev = n;
    ++size_;
  }

  void PushFront(T* obj) {
    ListNode* n = &(obj->*Node);
    SUNMT_DCHECK(!n->IsLinked());
    n->next = head_.next;
    n->prev = &head_;
    head_.next->prev = n;
    head_.next = n;
    ++size_;
  }

  T* PopFront() {
    if (Empty()) {
      return nullptr;
    }
    ListNode* n = head_.next;
    Unlink(n);
    return FromNode(n);
  }

  T* Front() const { return Empty() ? nullptr : FromNode(head_.next); }

  // Removes `obj` from the list. Precondition: obj is on this list.
  void Remove(T* obj) {
    ListNode* n = &(obj->*Node);
    SUNMT_DCHECK(n->IsLinked());
    Unlink(n);
  }

  // Removes `obj` if present (identified by link state). Returns true if removed.
  // Only valid when an object can be on at most one list through this node, which
  // is how all sunmt queues use it.
  bool TryRemove(T* obj) {
    ListNode* n = &(obj->*Node);
    if (!n->IsLinked()) {
      return false;
    }
    Unlink(n);
    return true;
  }

  // Iteration support: visits every element; `fn` must not modify the list.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (ListNode* n = head_.next; n != &head_; n = n->next) {
      fn(FromNode(n));
    }
  }

  // Removes and returns the first element satisfying `pred`, or nullptr.
  template <typename Pred>
  T* PopIf(Pred&& pred) {
    for (ListNode* n = head_.next; n != &head_; n = n->next) {
      T* obj = FromNode(n);
      if (pred(obj)) {
        Unlink(n);
        return obj;
      }
    }
    return nullptr;
  }

 private:
  static T* FromNode(ListNode* n) {
    // Recover the enclosing object from the embedded node.
    alignas(T) static char probe_storage[sizeof(T)];
    T* probe = reinterpret_cast<T*>(probe_storage);
    ptrdiff_t offset =
        reinterpret_cast<char*>(&(probe->*Node)) - reinterpret_cast<char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(n) - offset);
  }

  void Unlink(ListNode* n) {
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->prev = nullptr;
    n->next = nullptr;
    --size_;
  }

  ListNode head_;
  size_t size_ = 0;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_UTIL_INTRUSIVE_LIST_H_
