// Deterministic pseudo-random numbers for tests and workload generators.
//
// SplitMix64: tiny, fast, and good enough for workload shuffling. Seeded explicitly
// so every test and benchmark run is reproducible.

#ifndef SUNMT_SRC_UTIL_RNG_H_
#define SUNMT_SRC_UTIL_RNG_H_

#include <cstdint>

namespace sunmt {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / (1ull << 53)); }

 private:
  uint64_t state_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_UTIL_RNG_H_
