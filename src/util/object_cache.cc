#include "src/util/object_cache.h"

#include <pthread.h>

namespace sunmt {
namespace objcache_internal {

std::atomic<uint32_t> g_fork_epoch{0};
std::atomic<uint64_t> g_fallback_allocs{0};

namespace {

// Lock-free singly-linked list of every instantiated cache. Push-once per
// cache (guarded by the instantiation's function-local static), traversed by
// introspection and the fork1() child repair — which must not depend on a
// registration lock the parent could have forked while holding.
std::atomic<CacheNode*> g_head{nullptr};

// One process-wide TSD slot whose destructor retires the exiting kernel
// thread's magazine in every registered cache. A cache re-arms the slot if a
// later TSD destructor allocates again, so pthread's destructor iteration
// picks the new magazine up too.
pthread_key_t g_retire_key;
pthread_once_t g_retire_once = PTHREAD_ONCE_INIT;

void RetireThreadMagazines(void* /*unused*/) {
  for (CacheNode* n = Head(); n != nullptr; n = n->next) {
    n->retire_thread();
  }
}

void MakeRetireKey() {
  pthread_key_create(&g_retire_key, &RetireThreadMagazines);
}

}  // namespace

void ArmThreadRetire() {
  pthread_once(&g_retire_once, &MakeRetireKey);
  pthread_setspecific(g_retire_key, reinterpret_cast<void*>(1));
}

void Register(CacheNode* node) {
  CacheNode* head = g_head.load(std::memory_order_acquire);
  do {
    node->next = head;
  } while (!g_head.compare_exchange_weak(head, node, std::memory_order_release,
                                         std::memory_order_acquire));
}

CacheNode* Head() { return g_head.load(std::memory_order_acquire); }

}  // namespace objcache_internal

void ObjectCacheDrainAll() {
  for (auto* n = objcache_internal::Head(); n != nullptr; n = n->next) {
    n->drain();
  }
}

void ObjectCacheResetAfterForkAll() {
  for (auto* n = objcache_internal::Head(); n != nullptr; n = n->next) {
    n->reset_after_fork();
  }
  // Bumped after the depots/registries are rebuilt: a surviving magazine that
  // observes the new epoch must find the fresh registry, never the stale one.
  objcache_internal::g_fork_epoch.fetch_add(1, std::memory_order_release);
}

size_t ObjectCacheSnapshotAll(ObjectCacheStats* out, size_t max) {
  size_t count = 0;
  for (auto* n = objcache_internal::Head(); n != nullptr && count < max;
       n = n->next) {
    out[count++] = n->snapshot();
  }
  return count;
}

uint64_t ObjectCacheFallbackAllocs() {
  return objcache_internal::g_fallback_allocs.load(std::memory_order_relaxed);
}

}  // namespace sunmt
