#include "src/microtask/microtask.h"

#include <unistd.h>

#include <algorithm>

#include "src/lwp/kernel_wait.h"
#include "src/util/check.h"
#include "src/util/futex.h"

namespace sunmt {
namespace {

int OnlineCpus() {
  long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

// Distinct id space from the threads package's LWPs (introspection clarity).
std::atomic<int> g_next_microtask_lwp_id{20000};

}  // namespace

MicrotaskPool::MicrotaskPool(int nlwps) {
  int count = nlwps > 0 ? nlwps : OnlineCpus();
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    auto* lwp = new Lwp(g_next_microtask_lwp_id.fetch_add(1, std::memory_order_relaxed));
    workers_.push_back(lwp);
    lwp->Start(&MicrotaskPool::WorkerMain, this);
  }
}

MicrotaskPool::~MicrotaskPool() {
  shutdown_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  for (Lwp* lwp : workers_) {
    lwp->Unpark();
  }
  for (Lwp* lwp : workers_) {
    lwp->Join();
    delete lwp;
  }
}

void MicrotaskPool::WorkerMain(Lwp* self, void* arg) {
  static_cast<MicrotaskPool*>(arg)->WorkerLoop(self);
}

void MicrotaskPool::WorkerLoop(Lwp* self) {
  uint64_t seen_epoch = 0;
  for (;;) {
    // Wait for new work (or shutdown). Unpark tokens cannot be lost, so a
    // publish that races with this check still wakes us.
    while (epoch_.load(std::memory_order_acquire) == seen_epoch) {
      if (shutdown_.load(std::memory_order_acquire)) {
        return;
      }
      self->Park();
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    seen_epoch = epoch_.load(std::memory_order_acquire);

    // Chunked self-scheduling over [begin, end).
    const Work& work = work_;
    for (;;) {
      int64_t i = cursor_.fetch_add(work.grain, std::memory_order_acq_rel);
      if (i >= work.end) {
        break;
      }
      chunks_.fetch_add(1, std::memory_order_relaxed);
      int64_t limit = std::min(i + work.grain, work.end);
      for (int64_t iter = i; iter < limit; ++iter) {
        work.body(iter, work.cookie);
      }
    }
    if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_seq_.fetch_add(1, std::memory_order_release);
      FutexWake(&done_seq_, 1);
    }
  }
}

void MicrotaskPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                                void (*body)(int64_t, void*), void* cookie) {
  SUNMT_CHECK(body != nullptr);
  if (begin >= end) {
    return;
  }
  if (grain <= 0) {
    // Automatic grain: ~8 chunks per worker to balance without much overhead.
    int64_t span = end - begin;
    grain = std::max<int64_t>(1, span / (static_cast<int64_t>(workers_.size()) * 8));
  }
  work_ = {begin, end, grain, body, cookie};
  cursor_.store(begin, std::memory_order_relaxed);
  active_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  uint32_t done_before = done_seq_.load(std::memory_order_acquire);
  epoch_.fetch_add(1, std::memory_order_release);
  for (Lwp* lwp : workers_) {
    lwp->Unpark();
  }
  // Block until the gang finishes. The caller's LWP is in an indefinite kernel
  // wait (it could be a bound sunmt thread), so SIGWAITING accounting applies.
  KernelWaitScope wait(/*indefinite=*/true);
  while (done_seq_.load(std::memory_order_acquire) == done_before) {
    FutexWait(&done_seq_, done_before);
  }
}

void MicrotaskPool::EnableGangClass() {
  int ncpus = OnlineCpus();
  int cpu = 0;
  for (Lwp* lwp : workers_) {
    lwp->SetScheduling(SchedClass::kGang, 0);
    lwp->BindToCpu(cpu % ncpus);
    ++cpu;
  }
}

}  // namespace sunmt
