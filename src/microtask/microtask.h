// Micro-tasking: loop-level parallelism built directly on LWPs.
//
// The paper: "Some languages define concurrency mechanisms that are different
// from threads. An example is a Fortran compiler that provides loop level
// parallelism. In such cases, the language library may implement its own notion
// of concurrency using LWPs." And in the comparison section: "a micro-tasking
// Fortran run-time library relies on kernel-supported threads that are scheduled
// on processors as a group."
//
// MicrotaskPool is that language library: it owns a gang of raw LWPs (no
// sunmt threads involved), partitions iteration spaces across them with chunked
// self-scheduling, and optionally marks the gang with the kGang scheduling class
// and binds members to CPUs ("the LWP may also ask to be bound to a CPU").

#ifndef SUNMT_SRC_MICROTASK_MICROTASK_H_
#define SUNMT_SRC_MICROTASK_MICROTASK_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/lwp/lwp.h"

namespace sunmt {

class MicrotaskPool {
 public:
  // Creates a pool of `nlwps` worker LWPs (0 = one per online CPU).
  explicit MicrotaskPool(int nlwps = 0);
  ~MicrotaskPool();
  MicrotaskPool(const MicrotaskPool&) = delete;
  MicrotaskPool& operator=(const MicrotaskPool&) = delete;

  // Runs body(i, cookie) for every i in [begin, end), dynamically chunked
  // across the pool (`grain` iterations per grab; 0 = automatic). Blocks the
  // caller until the loop completes. Not reentrant.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   void (*body)(int64_t i, void* cookie), void* cookie);

  // Marks every member LWP with the gang scheduling class and (best effort)
  // binds member k to CPU k % ncpus — the paper's fine-grain-parallelism setup.
  void EnableGangClass();

  int size() const { return static_cast<int>(workers_.size()); }

  // Total chunks dispatched (observability for tests/benches).
  uint64_t chunks_dispatched() const {
    return chunks_.load(std::memory_order_relaxed);
  }

 private:
  struct Work {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    void (*body)(int64_t, void*) = nullptr;
    void* cookie = nullptr;
  };

  static void WorkerMain(Lwp* self, void* arg);
  void WorkerLoop(Lwp* self);

  std::vector<Lwp*> workers_;
  Work work_;
  std::atomic<uint64_t> epoch_{0};     // bumped to publish new work
  std::atomic<int64_t> cursor_{0};     // next unclaimed iteration
  std::atomic<int> active_{0};         // workers still in the current loop
  std::atomic<uint32_t> done_seq_{0};  // futex word: completion signal
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> chunks_{0};
};

}  // namespace sunmt

#endif  // SUNMT_SRC_MICROTASK_MICROTASK_H_
