// A sense-reversing barrier for gang-scheduled computations.
//
// Fine-grain parallel codes (the paper's gang-scheduling clientele) synchronize
// phases with barriers, not sleep locks: when the gang really runs together, a
// short spin beats a trip through any scheduler. This barrier spins briefly and
// then falls back to a futex so it also behaves when the gang is descheduled.
// Zero-initialized state is NOT sufficient here (participant count is required),
// so it takes a constructor — it is a computation-structure, not a
// synchronization variable in the paper's mapped-memory sense.

#ifndef SUNMT_SRC_MICROTASK_BARRIER_H_
#define SUNMT_SRC_MICROTASK_BARRIER_H_

#include <atomic>
#include <cstdint>

#include "src/util/futex.h"
#include "src/util/spinlock.h"

namespace sunmt {

class GangBarrier {
 public:
  explicit GangBarrier(int participants) : participants_(participants) {}
  GangBarrier(const GangBarrier&) = delete;
  GangBarrier& operator=(const GangBarrier&) = delete;

  // Blocks until all participants arrive. Returns true on exactly one
  // participant per phase (the "serial" one), false on the others.
  bool Arrive() {
    uint32_t my_phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
      FutexWake(&phase_, participants_);
      return true;
    }
    // Short bounded spin (the gang usually runs together), then futex: on an
    // oversubscribed machine the partner needs our CPU, so park quickly.
    int spins = 0;
    while (phase_.load(std::memory_order_acquire) == my_phase) {
      if (++spins < 256) {
        CpuRelax();
      } else {
        FutexWait(&phase_, my_phase);
      }
    }
    return false;
  }

  uint64_t phases_completed() const { return phase_.load(std::memory_order_relaxed); }

 private:
  const int participants_;
  std::atomic<int> arrived_{0};
  std::atomic<uint32_t> phase_{0};
};

}  // namespace sunmt

#endif  // SUNMT_SRC_MICROTASK_BARRIER_H_
