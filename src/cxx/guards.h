// RAII guards for the synchronization variables.
//
// The C API is strictly bracketing ("it is an error for a thread to release a
// lock not held by the thread"); these guards make the brackets impossible to
// mismatch in C++ code.

#ifndef SUNMT_SRC_CXX_GUARDS_H_
#define SUNMT_SRC_CXX_GUARDS_H_

#include "src/sync/sync.h"

namespace sunmt {

class MutexGuard {
 public:
  explicit MutexGuard(mutex_t& mu) : mu_(mu) { mutex_enter(&mu_); }
  ~MutexGuard() { mutex_exit(&mu_); }
  MutexGuard(const MutexGuard&) = delete;
  MutexGuard& operator=(const MutexGuard&) = delete;

 private:
  mutex_t& mu_;
};

// Tries the lock; check `ok()` before relying on exclusion.
class TryMutexGuard {
 public:
  explicit TryMutexGuard(mutex_t& mu) : mu_(mu), held_(mutex_tryenter(&mu) != 0) {}
  ~TryMutexGuard() {
    if (held_) {
      mutex_exit(&mu_);
    }
  }
  TryMutexGuard(const TryMutexGuard&) = delete;
  TryMutexGuard& operator=(const TryMutexGuard&) = delete;

  bool ok() const { return held_; }
  explicit operator bool() const { return held_; }

 private:
  mutex_t& mu_;
  bool held_;
};

class ReaderGuard {
 public:
  explicit ReaderGuard(rwlock_t& rw) : rw_(rw) { rw_enter(&rw_, RW_READER); }
  ~ReaderGuard() { rw_exit(&rw_); }
  ReaderGuard(const ReaderGuard&) = delete;
  ReaderGuard& operator=(const ReaderGuard&) = delete;

 private:
  rwlock_t& rw_;
};

class WriterGuard {
 public:
  explicit WriterGuard(rwlock_t& rw) : rw_(rw) { rw_enter(&rw_, RW_WRITER); }
  ~WriterGuard() { rw_exit(&rw_); }
  WriterGuard(const WriterGuard&) = delete;
  WriterGuard& operator=(const WriterGuard&) = delete;

  // rw_downgrade(): the guard keeps releasing correctly afterwards because
  // rw_exit handles both reader and writer holds.
  void Downgrade() { rw_downgrade(&rw_); }

 private:
  rwlock_t& rw_;
};

// Semaphore token held for a scope (P on entry, V on exit).
class SemaGuard {
 public:
  explicit SemaGuard(sema_t& sema) : sema_(sema) { sema_p(&sema_); }
  ~SemaGuard() { sema_v(&sema_); }
  SemaGuard(const SemaGuard&) = delete;
  SemaGuard& operator=(const SemaGuard&) = delete;

 private:
  sema_t& sema_;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_CXX_GUARDS_H_
