// Modern-C++ convenience wrapper over the Figure-4 thread interface.
//
// The C-style API is the reproduction artifact; this header is what a C++
// codebase would actually write against: an RAII joinable thread taking any
// callable, with the paper's knobs (bound/unbound, stack size, priority)
// exposed as options. Join-on-destruction, move-only, std::jthread-flavored.

#ifndef SUNMT_SRC_CXX_THREAD_H_
#define SUNMT_SRC_CXX_THREAD_H_

#include <functional>
#include <utility>

#include "src/core/thread.h"
#include "src/util/check.h"
#include "src/util/object_cache.h"

namespace sunmt {

namespace cxx_internal {

// One closure block per Thread(): cached per-LWP so spawn loops don't heap-
// allocate per thread (the std::function's own captured state may still,
// if the callable outgrows the small-object buffer).
struct ClosureCacheTag {
  static constexpr const char* kName = "cxx.closure";
};
using ClosureAlloc = CachedAlloc<std::function<void()>, ClosureCacheTag>;

}  // namespace cxx_internal

class Thread {
 public:
  struct Options {
    bool bound = false;       // THREAD_BIND_LWP: a dedicated LWP
    bool new_lwp = false;     // THREAD_NEW_LWP: also grow the pool
    bool start_stopped = false;  // THREAD_STOP: run only after Continue()
    size_t stack_size = 0;    // 0 = cached default stack
    int priority = -1;        // -1 = inherit from the creator
  };

  Thread() = default;

  // Spawns a joinable thread running `fn`.
  template <typename Fn>
  explicit Thread(Fn&& fn, const Options& options = {}) {
    auto* closure = cxx_internal::ClosureAlloc::New(std::forward<Fn>(fn));
    int flags = THREAD_WAIT;
    if (options.bound) {
      flags |= THREAD_BIND_LWP;
    }
    if (options.new_lwp) {
      flags |= THREAD_NEW_LWP;
    }
    if (options.start_stopped) {
      flags |= THREAD_STOP;
    }
    id_ = thread_create(nullptr, options.stack_size, &Trampoline, closure, flags);
    if (id_ == kInvalidThreadId) {
      cxx_internal::ClosureAlloc::Delete(closure);
      SUNMT_PANIC("sunmt::Thread creation failed");
    }
    if (options.priority >= 0) {
      thread_priority(id_, options.priority);
    }
  }

  Thread(Thread&& other) noexcept : id_(std::exchange(other.id_, kInvalidThreadId)) {}
  Thread& operator=(Thread&& other) noexcept {
    if (this != &other) {
      JoinIfJoinable();
      id_ = std::exchange(other.id_, kInvalidThreadId);
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  // jthread semantics: joins on destruction rather than aborting.
  ~Thread() { JoinIfJoinable(); }

  bool Joinable() const { return id_ != kInvalidThreadId; }
  thread_id_t id() const { return id_; }

  // Blocks until the thread exits. Must be joinable.
  void Join() {
    SUNMT_CHECK(Joinable());
    thread_id_t got = thread_wait(id_);
    SUNMT_CHECK(got == id_);
    id_ = kInvalidThreadId;
  }

  // thread_stop / thread_continue pass-throughs.
  void Stop() { SUNMT_CHECK(thread_stop(id_) == 0); }
  void Continue() { SUNMT_CHECK(thread_continue(id_) == 0); }
  int SetPriority(int priority) { return thread_priority(id_, priority); }

 private:
  static void Trampoline(void* arg) {
    auto* closure = static_cast<std::function<void()>*>(arg);
    (*closure)();
    cxx_internal::ClosureAlloc::Delete(closure);
  }

  void JoinIfJoinable() {
    if (Joinable()) {
      Join();
    }
  }

  thread_id_t id_ = kInvalidThreadId;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_CXX_THREAD_H_
