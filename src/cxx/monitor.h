// Monitor<T>: a value that can only be touched under its mutex.
//
// The paper's condvar usage pattern ("mutex_enter; while (cond) cv_wait; ...
// mutex_exit") packaged as a type: the data, the lock, and the condition
// variable travel together, and the compiler enforces the bracket.

#ifndef SUNMT_SRC_CXX_MONITOR_H_
#define SUNMT_SRC_CXX_MONITOR_H_

#include <utility>

#include "src/cxx/guards.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"

namespace sunmt {

template <typename T>
class Monitor {
 public:
  Monitor() = default;
  explicit Monitor(T initial) : value_(std::move(initial)) {}
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  // Runs fn(T&) under the lock; returns fn's result.
  template <typename Fn>
  auto With(Fn&& fn) {
    MutexGuard guard(mu_);
    return fn(value_);
  }

  // Runs fn(T&) under the lock and signals one waiter afterwards.
  template <typename Fn>
  auto WithSignal(Fn&& fn) {
    MutexGuard guard(mu_);
    auto cleanup = [this] { cv_signal(&cv_); };
    struct Signaler {
      decltype(cleanup)& fire;
      ~Signaler() { fire(); }
    } signaler{cleanup};
    return fn(value_);
  }

  // Runs fn(T&) under the lock and broadcasts afterwards.
  template <typename Fn>
  auto WithBroadcast(Fn&& fn) {
    MutexGuard guard(mu_);
    auto cleanup = [this] { cv_broadcast(&cv_); };
    struct Broadcaster {
      decltype(cleanup)& fire;
      ~Broadcaster() { fire(); }
    } broadcaster{cleanup};
    return fn(value_);
  }

  // Blocks until pred(T&) holds, then runs fn(T&), all under the lock.
  template <typename Pred, typename Fn>
  auto When(Pred&& pred, Fn&& fn) {
    MutexGuard guard(mu_);
    while (!pred(value_)) {
      cv_wait(&cv_, &mu_);
    }
    return fn(value_);
  }

  // Like When() but gives up after timeout_ns; returns false on timeout.
  template <typename Pred, typename Fn>
  bool WhenFor(int64_t timeout_ns, Pred&& pred, Fn&& fn) {
    MutexGuard guard(mu_);
    int64_t deadline = MonotonicNowNs() + timeout_ns;
    while (!pred(value_)) {
      int64_t remaining = deadline - MonotonicNowNs();
      if (remaining <= 0) {
        return false;
      }
      cv_timedwait(&cv_, &mu_, remaining);
    }
    fn(value_);
    return true;
  }

 private:
  mutex_t mu_ = {};
  condvar_t cv_ = {};
  T value_{};
};

}  // namespace sunmt

#endif  // SUNMT_SRC_CXX_MONITOR_H_
