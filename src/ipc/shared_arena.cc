#include "src/ipc/shared_arena.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/util/check.h"

namespace sunmt {
namespace {

void* MapSharedFd(int fd, size_t size) {
  void* base = mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    SUNMT_PANIC_ERRNO("shared arena mmap failed", errno);
  }
  return base;
}

}  // namespace

SharedArena& SharedArena::operator=(SharedArena&& other) noexcept {
  if (this != &other) {
    if (unmap_ && base_ != nullptr) {
      munmap(base_, size_);
    }
    base_ = other.base_;
    size_ = other.size_;
    unmap_ = other.unmap_;
    other.base_ = nullptr;
    other.size_ = 0;
    other.unmap_ = false;
  }
  return *this;
}

SharedArena::~SharedArena() {
  if (unmap_ && base_ != nullptr) {
    munmap(base_, size_);
  }
}

SharedArena SharedArena::CreateAnonymous(size_t size) {
  SUNMT_CHECK(size > sizeof(Header));
  void* base =
      mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    SUNMT_PANIC_ERRNO("anonymous shared arena mmap failed", errno);
  }
  SharedArena arena(base, size, /*unmap_on_destroy=*/true);
  arena.header()->cursor.store(0, std::memory_order_relaxed);
  arena.header()->magic.store(kMagic, std::memory_order_release);
  return arena;
}

SharedArena SharedArena::OpenNamed(const char* name, size_t size, bool create) {
  SUNMT_CHECK(size > sizeof(Header));
  int flags = O_RDWR | (create ? O_CREAT : 0);
  int fd = shm_open(name, flags, 0600);
  if (fd < 0) {
    SUNMT_PANIC_ERRNO("shm_open failed", errno);
  }
  if (create && ftruncate(fd, static_cast<off_t>(size)) != 0) {
    SUNMT_PANIC_ERRNO("shm ftruncate failed", errno);
  }
  void* base = MapSharedFd(fd, size);
  close(fd);
  SharedArena arena(base, size, /*unmap_on_destroy=*/true);
  if (create) {
    arena.header()->cursor.store(0, std::memory_order_relaxed);
    arena.header()->magic.store(kMagic, std::memory_order_release);
  } else {
    SUNMT_CHECK(arena.header()->magic.load(std::memory_order_acquire) == kMagic);
  }
  return arena;
}

SharedArena SharedArena::MapFile(const char* path, size_t size, bool create) {
  SUNMT_CHECK(size > sizeof(Header));
  int flags = O_RDWR | (create ? O_CREAT : 0);
  int fd = open(path, flags, 0600);
  if (fd < 0) {
    SUNMT_PANIC_ERRNO("arena file open failed", errno);
  }
  if (create && ftruncate(fd, static_cast<off_t>(size)) != 0) {
    SUNMT_PANIC_ERRNO("arena file ftruncate failed", errno);
  }
  void* base = MapSharedFd(fd, size);
  close(fd);
  SharedArena arena(base, size, /*unmap_on_destroy=*/true);
  if (create) {
    arena.header()->cursor.store(0, std::memory_order_relaxed);
    arena.header()->magic.store(kMagic, std::memory_order_release);
  } else {
    SUNMT_CHECK(arena.header()->magic.load(std::memory_order_acquire) == kMagic);
  }
  return arena;
}

void* SharedArena::data() const {
  return static_cast<char*>(base_) + sizeof(Header);
}

size_t SharedArena::data_size() const { return size_ - sizeof(Header); }

size_t SharedArena::Alloc(size_t size, size_t align) {
  SUNMT_CHECK(align != 0 && (align & (align - 1)) == 0);
  Header* h = header();
  for (;;) {
    uint64_t cursor = h->cursor.load(std::memory_order_acquire);
    uint64_t offset = (cursor + align - 1) & ~(static_cast<uint64_t>(align) - 1);
    uint64_t end = offset + size;
    SUNMT_CHECK(end <= data_size());
    if (h->cursor.compare_exchange_weak(cursor, end, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      return offset;
    }
  }
}

void SharedArena::Unlink(const char* name_or_path) {
  if (shm_unlink(name_or_path) != 0) {
    unlink(name_or_path);
  }
}

}  // namespace sunmt
