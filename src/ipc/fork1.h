// fork1() — fork only the calling thread.
//
// The paper defines two forks: fork(), which duplicates every LWP and thread, and
// fork1(), which duplicates only the caller — "much more efficient [for exec]
// because there is no need to duplicate all the LWPs". We implement fork1()
// faithfully (it is what POSIX fork() became); fork-all would require kernel
// support to recreate the other LWPs in the child and is documented as out of
// scope (DESIGN.md substitution table).
//
// The paper's fork1() hazards apply verbatim here and are the application's to
// manage: only the calling thread exists in the child; locks held by other
// threads at fork time stay locked forever in the child's copy of memory; locks
// in MAP_SHARED memory remain live in *both* processes.

#ifndef SUNMT_SRC_IPC_FORK1_H_
#define SUNMT_SRC_IPC_FORK1_H_

#include <sys/types.h>

namespace sunmt {

// Returns the child pid in the parent, 0 in the child (where the threads package
// has been reinitialized with the calling thread as the only thread), or -1 on
// failure (errno set by fork).
pid_t fork1();

}  // namespace sunmt

#endif  // SUNMT_SRC_IPC_FORK1_H_
