// Shared-memory arenas for cross-process synchronization.
//
// The paper: "threads in different processes can synchronize with each other via
// synchronization variables placed in shared memory ... synchronization variables
// can also be placed in files and have lifetimes beyond that of the creating
// process" (the database-record-lock example). A SharedArena is such a mapping:
// anonymous (inherited across fork), POSIX-named (shm_open), or file-backed.
//
// Variables are placed with Alloc(), whose bump cursor lives *inside* the mapping
// so every process placing variables sees the same layout. Mappings land at
// different virtual addresses in different processes; the THREAD_SYNC_SHARED
// sync variants are address-free, so that is fine.

#ifndef SUNMT_SRC_IPC_SHARED_ARENA_H_
#define SUNMT_SRC_IPC_SHARED_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sunmt {

class SharedArena {
 public:
  SharedArena() = default;

  // Anonymous MAP_SHARED mapping: shared with children across fork()/fork1().
  static SharedArena CreateAnonymous(size_t size);

  // POSIX shared-memory object. `create` truncates/initializes; otherwise the
  // object must exist and already be initialized.
  static SharedArena OpenNamed(const char* name, size_t size, bool create);

  // File-backed mapping (the "synchronization variables in files" case).
  static SharedArena MapFile(const char* path, size_t size, bool create);

  SharedArena(SharedArena&& other) noexcept { *this = static_cast<SharedArena&&>(other); }
  SharedArena& operator=(SharedArena&& other) noexcept;
  SharedArena(const SharedArena&) = delete;
  SharedArena& operator=(const SharedArena&) = delete;
  ~SharedArena();

  bool valid() const { return base_ != nullptr; }
  size_t size() const { return size_; }

  // Usable bytes start after the arena header.
  void* data() const;
  size_t data_size() const;

  // Allocates `size` bytes aligned to `align` from the shared bump cursor and
  // returns the offset (stable across processes). Panics when full.
  size_t Alloc(size_t size, size_t align);

  // Typed accessors by offset.
  template <typename T>
  T* At(size_t offset) const {
    return reinterpret_cast<T*>(static_cast<char*>(data()) + offset);
  }

  // Convenience: allocate and return a zeroed T in shared memory.
  template <typename T>
  T* New() {
    return At<T>(Alloc(sizeof(T), alignof(T)));
  }

  // Removes a named object / file created earlier (best effort).
  static void Unlink(const char* name_or_path);

 private:
  struct Header {
    std::atomic<uint64_t> magic;
    std::atomic<uint64_t> cursor;  // offset into the data region
  };
  static constexpr uint64_t kMagic = 0x53554e4d54415231ull;  // "SUNMTAR1"

  SharedArena(void* base, size_t size, bool unmap_on_destroy)
      : base_(base), size_(size), unmap_(unmap_on_destroy) {}

  Header* header() const { return static_cast<Header*>(base_); }

  void* base_ = nullptr;
  size_t size_ = 0;
  bool unmap_ = false;
};

}  // namespace sunmt

#endif  // SUNMT_SRC_IPC_SHARED_ARENA_H_
