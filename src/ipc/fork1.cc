#include "src/ipc/fork1.h"

#include <unistd.h>

#include "src/core/runtime.h"

namespace sunmt {

pid_t fork1() {
  pid_t pid = fork();
  if (pid == 0) {
    // Child: only this kernel thread survived the fork. Abandon the inherited
    // runtime (its LWPs are gone) and rebuild lazily; this thread re-adopts as
    // the initial thread on its next package call.
    Runtime::ResetAfterFork();
  }
  return pid;
}

}  // namespace sunmt
