// Thread synchronization — the paper's Figure 4, synchronization half.
//
// Four facilities: mutex locks, condition variables, counting semaphores, and
// multiple-readers/single-writer locks. Design rules straight from the paper:
//
//  * "Any synchronization variable that is statically or dynamically allocated as
//    zero may be used immediately without further initialization, and provides
//    the default implementation variant in the default initial state."
//  * The programmer picks an implementation variant at init time (spin, adaptive,
//    debugging, ...) and may bitwise-or THREAD_SYNC_SHARED into the type to share
//    the variable between processes.
//  * Process-shared variables are address-free: they may be mapped at different
//    virtual addresses in different processes (they are built on futex words).
//  * Process-local variants synchronize entirely in user space — "threads within
//    a program should not be forced to cross protection boundaries to synchronize"
//    — blocking a thread, never its LWP (unless the thread is bound).
//  * While a thread waits on a process-shared variable it is temporarily bound to
//    its LWP, which blocks in the kernel; such waits feed SIGWAITING.

#ifndef SUNMT_SRC_SYNC_SYNC_H_
#define SUNMT_SRC_SYNC_SYNC_H_

#include <atomic>
#include <cstdint>

#include "src/debug/lockdep.h"
#include "src/util/spinlock.h"

namespace sunmt {

struct Tcb;

// ---- Variant/type flags (or'able; 0 selects every default) -------------------
enum : int {
  USYNC_THREAD = 0,            // process-local (default)
  THREAD_SYNC_SHARED = 0x100,  // usable between processes via shared memory
  SYNC_SPIN = 0x1,             // mutex: pure spin (never blocks the thread)
  SYNC_ADAPTIVE = 0x2,         // mutex: spin briefly, then block (default)
  SYNC_DEBUG = 0x8,            // extra checking: ownership, recursion, ...
};

// rw_enter() lock request types.
enum rw_type_t : int {
  RW_READER = 0,
  RW_WRITER = 1,
};

// ---- Synchronization variable layouts ----------------------------------------
// All-zero bytes are a valid, default-variant initial state for every type.
// The futex `word`s are the only fields the process-shared variants touch, so a
// shared variable works regardless of the mapping address in each process.

struct mutex_t {
  std::atomic<uint32_t> word{0};  // local: 0 free / 1 held; shared: futex protocol
  uint32_t type{0};
  SpinLock qlock;
  Tcb* wait_head{nullptr};
  Tcb* wait_tail{nullptr};
  Tcb* owner{nullptr};  // maintained by the SYNC_DEBUG variant
  // Owner-aware adaptive spinning (local blocking variants): an onproc token
  // (see src/lwp/onproc.h) published by the holder after acquire and cleared
  // before release. Spinners decode it to ask "is the holder still ON-PROC?"
  // without ever touching the holder's TCB. 0 = unknown (also the valid
  // all-zero initial state).
  std::atomic<uint64_t> owner_token{0};
  // Hold-time metrics: enter timestamp, written by the holder while stats are
  // enabled (0 otherwise). Strict bracketing makes this race-free.
  int64_t acquired_ns{0};
  // Lock-order / deadlock detector state (SUNMT_DEBUG=lockorder); all-zero is
  // valid. In shared memory for THREAD_SYNC_SHARED variables — only pid-tagged
  // fields are trusted across processes (see lockdep.h).
  lockdep::ObjDebug lockdep_dbg;
};

struct condvar_t {
  std::atomic<uint32_t> seq{0};  // shared variant: futex sequence word
  uint32_t type{0};
  SpinLock qlock;
  Tcb* wait_head{nullptr};
  Tcb* wait_tail{nullptr};
  lockdep::ObjDebug lockdep_dbg;
};

struct sema_t {
  std::atomic<uint32_t> count{0};  // shared variant: futex word
  uint32_t type{0};
  SpinLock qlock;
  Tcb* wait_head{nullptr};
  Tcb* wait_tail{nullptr};
  lockdep::ObjDebug lockdep_dbg;
};

struct rwlock_t {
  // Local & shared: bit 31 = writer held, bit 30 = writers waiting (shared
  // variant only), low bits = reader count.
  std::atomic<uint32_t> state{0};
  uint32_t type{0};
  SpinLock qlock;
  Tcb* wait_head{nullptr};
  Tcb* wait_tail{nullptr};
  uint32_t waiting_writers{0};  // local variant, guarded by qlock
  Tcb* upgrader{nullptr};       // local variant: thread blocked in rw_tryupgrade
  lockdep::ObjDebug lockdep_dbg;
};

// ---- Mutex locks ---------------------------------------------------------------
// "Low overhead in both space and time ... strictly bracketing."
void mutex_init(mutex_t* mp, int type, void* arg);
void mutex_enter(mutex_t* mp);
void mutex_exit(mutex_t* mp);
int mutex_tryenter(mutex_t* mp);  // nonzero on success

// ---- Condition variables ---------------------------------------------------------
// Always used with a mutex; waiters must re-test their condition (there is no
// guaranteed acquisition order, and the shared variant may wake spuriously).
void cv_init(condvar_t* cvp, int type, void* arg);
void cv_wait(condvar_t* cvp, mutex_t* mutexp);
void cv_signal(condvar_t* cvp);
void cv_broadcast(condvar_t* cvp);

// ---- Counting semaphores ------------------------------------------------------------
// "They need not be bracketed ... they also contain state so they may be used
// asynchronously without acquiring a mutex."
void sema_init(sema_t* sp, unsigned int count, int type, void* arg);
void sema_p(sema_t* sp);
void sema_v(sema_t* sp);
int sema_tryp(sema_t* sp);  // nonzero on success

// ---- Readers/writer locks -------------------------------------------------------------
void rw_init(rwlock_t* rwlp, int type, void* arg);
void rw_enter(rwlock_t* rwlp, rw_type_t type);
void rw_exit(rwlock_t* rwlp);
int rw_tryenter(rwlock_t* rwlp, rw_type_t type);  // nonzero on success
// Atomically converts a held writer lock into a reader lock; waiting writers
// remain waiting, pending readers are admitted.
void rw_downgrade(rwlock_t* rwlp);
// Attempts to convert a held reader lock into a writer lock. Fails (returns 0)
// if another upgrade is in progress or writers are waiting; otherwise waits for
// the other readers to leave. (The shared variant additionally fails instead of
// waiting when other readers hold the lock — a documented variant difference.)
int rw_tryupgrade(rwlock_t* rwlp);

// ---- Debug naming / lock-order annotation ------------------------------------
// Lock-order and deadlock reports (SUNMT_DEBUG=lockorder, src/debug/lockdep.h)
// print `log_lock` instead of `mutex@0x40f3a2` once a variable is named.
// Variables sharing a name share a lock-order class. Names work whether or not
// the detector is enabled; unnamed variables get a class derived from their
// init (or first-acquire) site. *_set_order() places the variable's class in a
// locking hierarchy: acquiring strictly upward is exempt from order tracking,
// and same-class nesting becomes legal (the take-buckets-in-address-order
// idiom). Level must be >= 1.
void mutex_set_name(mutex_t* mp, const char* name);
void cv_set_name(condvar_t* cvp, const char* name);
void sema_set_name(sema_t* sp, const char* name);
void rw_set_name(rwlock_t* rwlp, const char* name);
void mutex_set_order(mutex_t* mp, int level);
void sema_set_order(sema_t* sp, int level);
void rw_set_order(rwlock_t* rwlp, int level);

}  // namespace sunmt

#endif  // SUNMT_SRC_SYNC_SYNC_H_
