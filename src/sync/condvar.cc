// Condition variables.
//
// "cv_wait() blocks until the condition is signaled. It releases the associated
// mutex before blocking, and reacquires it before returning. ... the condition
// that caused the wait must be re-tested."
//
// Local variant: the waiter enqueues under the condvar's qlock *before* dropping
// the mutex, so a signal between unlock and block cannot be lost. Shared variant:
// futex sequence-word protocol (address-free; may wake spuriously — the mandated
// re-test loop absorbs that).

#include "src/sync/sync.h"

#include <climits>

#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/lwp/kernel_wait.h"
#include "src/sync/waitq.h"
#include "src/util/futex.h"

namespace sunmt {
namespace {

bool IsShared(const condvar_t* cvp) { return (cvp->type & THREAD_SYNC_SHARED) != 0; }

uint32_t LdFlags(const condvar_t* cvp) {
  return IsShared(cvp) ? static_cast<uint32_t>(lockdep::kFlagShared) : 0u;  // condvars have no owner
}

}  // namespace

void cv_init(condvar_t* cvp, int type, void* arg) {
  (void)arg;
  cvp->seq.store(0, std::memory_order_relaxed);
  cvp->type = static_cast<uint32_t>(type);
  cvp->wait_head = nullptr;
  cvp->wait_tail = nullptr;
  cvp->qlock.Reset();  // storage may carry a stale locked image (see sema_init)
  lockdep::OnInit(&cvp->lockdep_dbg, lockdep::kCondvar,
                  reinterpret_cast<uintptr_t>(__builtin_return_address(0)));
}

void cv_wait(condvar_t* cvp, mutex_t* mutexp) {
  if (IsShared(cvp)) {
    uint32_t seq = cvp->seq.load(std::memory_order_acquire);
    mutex_exit(mutexp);
    int64_t t0 = SyncWaitStartNs();
    {
      KernelWaitScope wait(/*indefinite=*/true);
      if (lockdep::Enabled()) {
        lockdep::OnBlock(&cvp->lockdep_dbg, lockdep::kCondvar, LdFlags(cvp));
      }
      FutexWait(&cvp->seq, seq, /*shared=*/true);
      if (lockdep::Enabled()) {
        lockdep::OnUnblock();
      }
    }
    Tcb* cur = sched::CurrentTcb();
    SyncWaitEndNs(LatencyStat::kCondvarWaitShared, TraceEvent::kCvWait,
                  cur != nullptr ? static_cast<uint64_t>(cur->id) : 0, t0);
    mutex_enter(mutexp);
    return;
  }
  Tcb* self = sched::CurrentTcbOrAdopt();
  cvp->qlock.Lock();
  WaitqPush(&cvp->wait_head, &cvp->wait_tail, self);
  mutex_exit(mutexp);
  int64_t t0 = SyncWaitStartNs();
  if (lockdep::Enabled()) {
    lockdep::OnBlock(&cvp->lockdep_dbg, lockdep::kCondvar, LdFlags(cvp));
  }
  sched::Block(&cvp->qlock);  // releases qlock after the context save
  if (lockdep::Enabled()) {
    lockdep::OnUnblock();
  }
  SyncWaitEndNs(LatencyStat::kCondvarWaitLocal, TraceEvent::kCvWait,
                static_cast<uint64_t>(self->id), t0);
  mutex_enter(mutexp);
}

void cv_signal(condvar_t* cvp) {
  if (IsShared(cvp)) {
    cvp->seq.fetch_add(1, std::memory_order_release);
    FutexWake(&cvp->seq, 1, /*shared=*/true);
    return;
  }
  Tcb* waiter = nullptr;
  {
    SpinLockGuard guard(cvp->qlock);
    waiter = WaitqPop(&cvp->wait_head, &cvp->wait_tail);
  }
  if (waiter != nullptr) {
    sched::Wake(waiter);
  }
}

void cv_broadcast(condvar_t* cvp) {
  if (IsShared(cvp)) {
    cvp->seq.fetch_add(1, std::memory_order_release);
    FutexWake(&cvp->seq, INT_MAX, /*shared=*/true);
    return;
  }
  // Pop the whole chain under the lock, wake outside it ("causes all threads
  // blocking on the condition to re-contend for the mutex").
  Tcb* chain = nullptr;
  {
    SpinLockGuard guard(cvp->qlock);
    chain = cvp->wait_head;
    cvp->wait_head = nullptr;
    cvp->wait_tail = nullptr;
  }
  while (chain != nullptr) {
    Tcb* next = chain->wait_next;
    chain->wait_next = nullptr;
    sched::Wake(chain);
    chain = next;
  }
}

void cv_set_name(condvar_t* cvp, const char* name) {
  lockdep::SetName(&cvp->lockdep_dbg, lockdep::kCondvar, name);
}

}  // namespace sunmt
