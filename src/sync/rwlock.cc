// Multiple readers, single writer locks.
//
// Local variant: all transitions under the qlock, with direct hand-off — the
// waker updates the lock state on behalf of the threads it wakes, so woken
// threads return without re-contending. Writers are preferred (new readers queue
// behind waiting writers) to avoid writer starvation. rw_downgrade() follows the
// paper exactly: "any waiting writers remain waiting; if there are no waiting
// writers it wakes up any pending readers." rw_tryupgrade() fails if another
// upgrade is in progress or writers are waiting, otherwise waits for the other
// readers to drain.
//
// Shared variant: one futex word (bit 31 writer, bit 30 writers-waiting, low bits
// reader count), address-free across processes.

#include "src/sync/sync.h"

#include <climits>

#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/lwp/kernel_wait.h"
#include "src/sync/waitq.h"
#include "src/util/check.h"
#include "src/util/futex.h"

namespace sunmt {
namespace {

constexpr uint32_t kWriterBit = 1u << 31;
constexpr uint32_t kWriterWaitBit = 1u << 30;  // shared variant only
constexpr uint32_t kReaderMask = kWriterWaitBit - 1;

constexpr uint8_t kModeReader = 0;
constexpr uint8_t kModeWriter = 1;

bool IsShared(const rwlock_t* rwlp) { return (rwlp->type & THREAD_SYNC_SHARED) != 0; }

// Only a writer hold is exclusive ownership the wait-for graph can follow;
// reader holds still enter the held stack / order graph.
uint32_t LdFlags(const rwlock_t* rwlp, rw_type_t type) {
  return (type == RW_WRITER ? static_cast<uint32_t>(lockdep::kFlagOwner) : 0u) |
         (IsShared(rwlp) ? static_cast<uint32_t>(lockdep::kFlagShared) : 0u);
}

// ---- Local variant ----------------------------------------------------------

// Admits queued threads after the lock became free. Called with qlock held;
// returns a chain of threads to wake (linked via wait_next) after unlock.
Tcb* AdmitNextLocked(rwlock_t* rwlp) {
  Tcb* front = rwlp->wait_head;
  if (front == nullptr) {
    return nullptr;
  }
  if (front->wait_mode == kModeWriter) {
    Tcb* writer = WaitqPop(&rwlp->wait_head, &rwlp->wait_tail);
    --rwlp->waiting_writers;
    rwlp->state.store(kWriterBit, std::memory_order_relaxed);
    writer->wait_next = nullptr;
    return writer;
  }
  // Admit the contiguous run of readers at the head of the queue.
  Tcb* chain = nullptr;
  Tcb** link = &chain;
  uint32_t admitted = 0;
  while (rwlp->wait_head != nullptr && rwlp->wait_head->wait_mode == kModeReader) {
    Tcb* reader = WaitqPop(&rwlp->wait_head, &rwlp->wait_tail);
    *link = reader;
    link = &reader->wait_next;
    ++admitted;
  }
  *link = nullptr;
  rwlp->state.store(admitted, std::memory_order_relaxed);
  return chain;
}

void WakeChain(Tcb* chain) {
  while (chain != nullptr) {
    Tcb* next = chain->wait_next;
    chain->wait_next = nullptr;
    sched::Wake(chain);
    chain = next;
  }
}

void LocalEnter(rwlock_t* rwlp, rw_type_t type) {
  Tcb* self = sched::CurrentTcbOrAdopt();
  rwlp->qlock.Lock();
  uint32_t s = rwlp->state.load(std::memory_order_relaxed);
  if (type == RW_READER) {
    if ((s & kWriterBit) == 0 && rwlp->waiting_writers == 0 && rwlp->upgrader == nullptr) {
      rwlp->state.store(s + 1, std::memory_order_relaxed);
      rwlp->qlock.Unlock();
      return;
    }
    self->wait_mode = kModeReader;
  } else {
    if (s == 0) {
      rwlp->state.store(kWriterBit, std::memory_order_relaxed);
      rwlp->qlock.Unlock();
      return;
    }
    self->wait_mode = kModeWriter;
    ++rwlp->waiting_writers;
  }
  if (lockdep::Enabled()) {
    lockdep::OnBlock(&rwlp->lockdep_dbg, lockdep::kRwlock, 0);
  }
  WaitqPush(&rwlp->wait_head, &rwlp->wait_tail, self);
  int64_t t0 = SyncWaitStartNs();
  sched::Block(&rwlp->qlock);
  if (lockdep::Enabled()) {
    lockdep::OnUnblock();
  }
  // Direct hand-off: the waker already transferred ownership to us.
  SyncWaitEndNs(LatencyStat::kRwlockWaitLocal, TraceEvent::kRwWait,
                static_cast<uint64_t>(self->id), t0);
}

void LocalExit(rwlock_t* rwlp) {
  rwlp->qlock.Lock();
  uint32_t s = rwlp->state.load(std::memory_order_relaxed);
  Tcb* wake_chain = nullptr;
  Tcb* upgrader = nullptr;
  if ((s & kWriterBit) != 0) {
    rwlp->state.store(0, std::memory_order_relaxed);
    wake_chain = AdmitNextLocked(rwlp);
  } else {
    SUNMT_CHECK((s & kReaderMask) > 0);  // exit without a held reader lock
    uint32_t readers = (s & kReaderMask) - 1;
    rwlp->state.store(readers, std::memory_order_relaxed);
    if (readers == 1 && rwlp->upgrader != nullptr) {
      // Only the upgrading reader remains: convert its hold to a writer lock.
      upgrader = rwlp->upgrader;
      rwlp->upgrader = nullptr;
      rwlp->state.store(kWriterBit, std::memory_order_relaxed);
    } else if (readers == 0) {
      wake_chain = AdmitNextLocked(rwlp);
    }
  }
  rwlp->qlock.Unlock();
  if (upgrader != nullptr) {
    sched::Wake(upgrader);
  }
  WakeChain(wake_chain);
}

int LocalTryEnter(rwlock_t* rwlp, rw_type_t type) {
  SpinLockGuard guard(rwlp->qlock);
  uint32_t s = rwlp->state.load(std::memory_order_relaxed);
  if (type == RW_READER) {
    if ((s & kWriterBit) == 0 && rwlp->waiting_writers == 0 && rwlp->upgrader == nullptr) {
      rwlp->state.store(s + 1, std::memory_order_relaxed);
      return 1;
    }
    return 0;
  }
  if (s == 0) {
    rwlp->state.store(kWriterBit, std::memory_order_relaxed);
    return 1;
  }
  return 0;
}

void LocalDowngrade(rwlock_t* rwlp) {
  rwlp->qlock.Lock();
  uint32_t s = rwlp->state.load(std::memory_order_relaxed);
  SUNMT_CHECK((s & kWriterBit) != 0);  // downgrade without the writer lock
  uint32_t readers = 1;                // the caller's new reader hold
  Tcb* chain = nullptr;
  if (rwlp->waiting_writers == 0) {
    // "If there are no waiting writers it wakes up any pending readers."
    Tcb** link = &chain;
    while (rwlp->wait_head != nullptr && rwlp->wait_head->wait_mode == kModeReader) {
      Tcb* reader = WaitqPop(&rwlp->wait_head, &rwlp->wait_tail);
      *link = reader;
      link = &reader->wait_next;
      ++readers;
    }
    *link = nullptr;
  }
  rwlp->state.store(readers, std::memory_order_relaxed);
  rwlp->qlock.Unlock();
  WakeChain(chain);
}

int LocalTryUpgrade(rwlock_t* rwlp) {
  Tcb* self = sched::CurrentTcbOrAdopt();
  rwlp->qlock.Lock();
  uint32_t s = rwlp->state.load(std::memory_order_relaxed);
  SUNMT_CHECK((s & kWriterBit) == 0 && (s & kReaderMask) > 0);  // must hold a reader
  if (rwlp->upgrader != nullptr || rwlp->waiting_writers > 0) {
    rwlp->qlock.Unlock();
    return 0;
  }
  if ((s & kReaderMask) == 1) {
    rwlp->state.store(kWriterBit, std::memory_order_relaxed);
    rwlp->qlock.Unlock();
    return 1;
  }
  // Other readers hold the lock: wait for them to drain (new readers are kept
  // out while an upgrade is pending).
  rwlp->upgrader = self;
  if (lockdep::Enabled()) {
    lockdep::OnBlock(&rwlp->lockdep_dbg, lockdep::kRwlock, 0);
  }
  int64_t t0 = SyncWaitStartNs();
  sched::Block(&rwlp->qlock);
  if (lockdep::Enabled()) {
    lockdep::OnUnblock();
  }
  // The last exiting reader converted our hold to a writer lock.
  SyncWaitEndNs(LatencyStat::kRwlockWaitLocal, TraceEvent::kRwWait,
                static_cast<uint64_t>(self->id), t0);
  return 1;
}

// ---- Shared (futex) variant ---------------------------------------------------

// Wait-end bookkeeping for the shared variant's lazily started timer.
void SharedWaitEnd(int64_t t0) {
  if (t0 == 0) {
    return;
  }
  Tcb* self = sched::CurrentTcb();
  SyncWaitEndNs(LatencyStat::kRwlockWaitShared, TraceEvent::kRwWait,
                self != nullptr ? static_cast<uint64_t>(self->id) : 0, t0);
}

void SharedEnter(rwlock_t* rwlp, rw_type_t type) {
  std::atomic<uint32_t>* word = &rwlp->state;
  int64_t t0 = 0;  // started lazily on the first futex wait
  if (type == RW_READER) {
    for (;;) {
      uint32_t s = word->load(std::memory_order_relaxed);
      if ((s & (kWriterBit | kWriterWaitBit)) == 0) {
        if (word->compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
          SharedWaitEnd(t0);
          return;
        }
        continue;
      }
      if (t0 == 0) {
        t0 = SyncWaitStartNs();
      }
      if (lockdep::Enabled()) {
        lockdep::OnBlock(&rwlp->lockdep_dbg, lockdep::kRwlock,
                         lockdep::kFlagShared);
      }
      {
        KernelWaitScope wait(/*indefinite=*/true);
        FutexWait(word, s, /*shared=*/true);
      }
      if (lockdep::Enabled()) {
        lockdep::OnUnblock();
      }
    }
  }
  for (;;) {
    uint32_t s = word->load(std::memory_order_relaxed);
    if ((s & ~kWriterWaitBit) == 0) {
      if (word->compare_exchange_weak(s, kWriterBit, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        SharedWaitEnd(t0);
        return;
      }
      continue;
    }
    if ((s & kWriterWaitBit) == 0) {
      if (!word->compare_exchange_weak(s, s | kWriterWaitBit, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
        continue;
      }
      s |= kWriterWaitBit;
    }
    if (t0 == 0) {
      t0 = SyncWaitStartNs();
    }
    if (lockdep::Enabled()) {
      lockdep::OnBlock(&rwlp->lockdep_dbg, lockdep::kRwlock,
                       lockdep::kFlagShared);
    }
    {
      KernelWaitScope wait(/*indefinite=*/true);
      FutexWait(word, s, /*shared=*/true);
    }
    if (lockdep::Enabled()) {
      lockdep::OnUnblock();
    }
  }
}

void SharedExit(rwlock_t* rwlp) {
  std::atomic<uint32_t>* word = &rwlp->state;
  uint32_t s = word->load(std::memory_order_relaxed);
  if ((s & kWriterBit) != 0) {
    word->store(0, std::memory_order_release);
    FutexWake(word, INT_MAX, /*shared=*/true);
    return;
  }
  uint32_t remaining = word->fetch_sub(1, std::memory_order_release) - 1;
  if ((remaining & kReaderMask) == 0 && remaining != 0) {
    // Last reader out with writers waiting: clear the flag and wake them.
    word->fetch_and(~kWriterWaitBit, std::memory_order_release);
    FutexWake(word, INT_MAX, /*shared=*/true);
  }
}

int SharedTryEnter(rwlock_t* rwlp, rw_type_t type) {
  std::atomic<uint32_t>* word = &rwlp->state;
  uint32_t s = word->load(std::memory_order_relaxed);
  if (type == RW_READER) {
    while ((s & (kWriterBit | kWriterWaitBit)) == 0) {
      if (word->compare_exchange_weak(s, s + 1, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return 1;
      }
    }
    return 0;
  }
  uint32_t expected = 0;
  return word->compare_exchange_strong(expected, kWriterBit, std::memory_order_acquire,
                                       std::memory_order_relaxed)
             ? 1
             : 0;
}

void SharedDowngrade(rwlock_t* rwlp) {
  rwlp->state.store(1, std::memory_order_release);
  FutexWake(&rwlp->state, INT_MAX, /*shared=*/true);
}

int SharedTryUpgrade(rwlock_t* rwlp) {
  uint32_t expected = 1;
  return rwlp->state.compare_exchange_strong(expected, kWriterBit,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed)
             ? 1
             : 0;
}

}  // namespace

void rw_init(rwlock_t* rwlp, int type, void* arg) {
  (void)arg;
  rwlp->state.store(0, std::memory_order_relaxed);
  rwlp->type = static_cast<uint32_t>(type);
  rwlp->wait_head = nullptr;
  rwlp->wait_tail = nullptr;
  rwlp->waiting_writers = 0;
  rwlp->upgrader = nullptr;
  rwlp->qlock.Reset();  // storage may carry a stale locked image (see sema_init)
  lockdep::OnInit(&rwlp->lockdep_dbg, lockdep::kRwlock,
                  reinterpret_cast<uintptr_t>(__builtin_return_address(0)));
}

void rw_enter(rwlock_t* rwlp, rw_type_t type) {
  const uintptr_t caller =
      reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  if (lockdep::Enabled()) {
    lockdep::OnAcquireCheck(&rwlp->lockdep_dbg, lockdep::kRwlock, caller);
  }
  if (IsShared(rwlp)) {
    SharedEnter(rwlp, type);
  } else {
    LocalEnter(rwlp, type);
  }
  if (lockdep::Enabled()) {
    lockdep::OnAcquired(&rwlp->lockdep_dbg, lockdep::kRwlock, caller,
                        LdFlags(rwlp, type));
  }
}

void rw_exit(rwlock_t* rwlp) {
  if (lockdep::Enabled()) {
    // The caller is either the writer (bit set, stable while held) or one of
    // the readers; only a writer exit clears ownership.
    bool was_writer =
        (rwlp->state.load(std::memory_order_relaxed) & kWriterBit) != 0;
    lockdep::OnRelease(&rwlp->lockdep_dbg,
                       LdFlags(rwlp, was_writer ? RW_WRITER : RW_READER));
  }
  if (IsShared(rwlp)) {
    SharedExit(rwlp);
  } else {
    LocalExit(rwlp);
  }
}

int rw_tryenter(rwlock_t* rwlp, rw_type_t type) {
  int ok = IsShared(rwlp) ? SharedTryEnter(rwlp, type) : LocalTryEnter(rwlp, type);
  if (ok != 0 && lockdep::Enabled()) {
    lockdep::OnAcquired(&rwlp->lockdep_dbg, lockdep::kRwlock,
                        reinterpret_cast<uintptr_t>(__builtin_return_address(0)),
                        LdFlags(rwlp, type) | lockdep::kFlagTry);
  }
  return ok;
}

void rw_downgrade(rwlock_t* rwlp) {
  if (lockdep::Enabled()) {
    lockdep::OnDowngrade(&rwlp->lockdep_dbg);
  }
  if (IsShared(rwlp)) {
    SharedDowngrade(rwlp);
  } else {
    LocalDowngrade(rwlp);
  }
}

int rw_tryupgrade(rwlock_t* rwlp) {
  int ok = IsShared(rwlp) ? SharedTryUpgrade(rwlp) : LocalTryUpgrade(rwlp);
  if (ok != 0 && lockdep::Enabled()) {
    lockdep::OnUpgrade(&rwlp->lockdep_dbg,
                       IsShared(rwlp) ? static_cast<uint32_t>(lockdep::kFlagShared)
                                      : 0u);
  }
  return ok;
}

void rw_set_name(rwlock_t* rwlp, const char* name) {
  lockdep::SetName(&rwlp->lockdep_dbg, lockdep::kRwlock, name);
}

void rw_set_order(rwlock_t* rwlp, int level) {
  lockdep::SetOrder(&rwlp->lockdep_dbg, lockdep::kRwlock, level,
                    reinterpret_cast<uintptr_t>(__builtin_return_address(0)));
}

}  // namespace sunmt
