// Counting semaphores.
//
// "They are not as efficient as mutex locks, but they need not be bracketed ...
// they also contain state so they may be used asynchronously." sema_v() is safe
// from signal handlers (it never blocks).
//
// Local variant: direct hand-off — sema_v() gives the credit to the oldest waiter
// instead of bumping the count, so a woken thread returns without re-contending.
// Shared variant: futex protocol on the count word (address-free).

#include "src/sync/sync.h"

#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/lwp/kernel_wait.h"
#include "src/sync/waitq.h"
#include "src/util/futex.h"

namespace sunmt {
namespace {

bool IsShared(const sema_t* sp) { return (sp->type & THREAD_SYNC_SHARED) != 0; }

void SharedP(sema_t* sp) {
  int64_t t0 = 0;  // started lazily: only the blocking path is a "wait"
  for (;;) {
    uint32_t cur = sp->count.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (sp->count.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        if (t0 != 0) {
          Tcb* self = sched::CurrentTcb();
          SyncWaitEndNs(LatencyStat::kSemaWaitShared, TraceEvent::kSemaWait,
                        self != nullptr ? static_cast<uint64_t>(self->id) : 0,
                        t0);
        }
        return;
      }
    }
    if (t0 == 0) {
      t0 = SyncWaitStartNs();
    }
    KernelWaitScope wait(/*indefinite=*/true);
    FutexWait(&sp->count, 0, /*shared=*/true);
  }
}

void SharedV(sema_t* sp) {
  sp->count.fetch_add(1, std::memory_order_release);
  FutexWake(&sp->count, 1, /*shared=*/true);
}

}  // namespace

void sema_init(sema_t* sp, unsigned int count, int type, void* arg) {
  (void)arg;
  sp->count.store(count, std::memory_order_relaxed);
  sp->type = static_cast<uint32_t>(type);
  sp->wait_head = nullptr;
  sp->wait_tail = nullptr;
  // Re-initialization of a previously used variable ("initializing an already
  // initialized variable is legal but ill-advised"): the storage may carry a
  // stale locked qlock image — e.g. memcpy'd from a variable caught mid
  // critical section — which would deadlock the first waiter forever.
  sp->qlock.Reset();
}

void sema_p(sema_t* sp) {
  if (IsShared(sp)) {
    SharedP(sp);
    return;
  }
  Tcb* self = sched::CurrentTcbOrAdopt();
  sp->qlock.Lock();
  uint32_t cur = sp->count.load(std::memory_order_relaxed);
  if (cur > 0) {
    sp->count.store(cur - 1, std::memory_order_relaxed);
    sp->qlock.Unlock();
    return;
  }
  WaitqPush(&sp->wait_head, &sp->wait_tail, self);
  int64_t t0 = SyncWaitStartNs();
  sched::Block(&sp->qlock);
  // Woken by sema_v with the credit handed off directly; nothing to re-check.
  SyncWaitEndNs(LatencyStat::kSemaWaitLocal, TraceEvent::kSemaWait,
                static_cast<uint64_t>(self->id), t0);
}

void sema_v(sema_t* sp) {
  if (IsShared(sp)) {
    SharedV(sp);
    return;
  }
  Tcb* waiter = nullptr;
  {
    SpinLockGuard guard(sp->qlock);
    waiter = WaitqPop(&sp->wait_head, &sp->wait_tail);
    if (waiter == nullptr) {
      sp->count.store(sp->count.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    }
  }
  if (waiter != nullptr) {
    sched::Wake(waiter);
  }
}

int sema_tryp(sema_t* sp) {
  if (IsShared(sp)) {
    uint32_t cur = sp->count.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (sp->count.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        return 1;
      }
    }
    return 0;
  }
  SpinLockGuard guard(sp->qlock);
  uint32_t cur = sp->count.load(std::memory_order_relaxed);
  if (cur == 0) {
    return 0;
  }
  sp->count.store(cur - 1, std::memory_order_relaxed);
  return 1;
}

}  // namespace sunmt
