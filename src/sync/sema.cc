// Counting semaphores.
//
// "They are not as efficient as mutex locks, but they need not be bracketed ...
// they also contain state so they may be used asynchronously." sema_v() is safe
// from signal handlers (it never blocks).
//
// Local variant: direct hand-off — sema_v() gives the credit to the oldest waiter
// instead of bumping the count, so a woken thread returns without re-contending.
// Shared variant: futex protocol on the count word (address-free).

#include "src/sync/sync.h"

#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/lwp/kernel_wait.h"
#include "src/sync/waitq.h"
#include "src/util/futex.h"

namespace sunmt {
namespace {

bool IsShared(const sema_t* sp) { return (sp->type & THREAD_SYNC_SHARED) != 0; }

// Semaphores have no owner: a credit P'd here may be V'd by any thread (the
// handshake idiom), so recording the last P-er as "owner" would fabricate
// wait-for cycles out of ordinary ping-pong. Semas therefore stay out of the
// deadlock walk entirely — no owner, no shared-memory breadcrumbs (a held
// sema entry can outlive its arena mapping, so stamping it would touch
// unmapped memory) — and participate only in the lock-order graph, where
// sema-as-lock AB/BA misuse is still caught at the second acquisition site.
uint32_t LdFlags(const sema_t*) { return 0; }

void SharedP(sema_t* sp) {
  int64_t t0 = 0;  // started lazily: only the blocking path is a "wait"
  for (;;) {
    uint32_t cur = sp->count.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (sp->count.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        if (t0 != 0) {
          Tcb* self = sched::CurrentTcb();
          SyncWaitEndNs(LatencyStat::kSemaWaitShared, TraceEvent::kSemaWait,
                        self != nullptr ? static_cast<uint64_t>(self->id) : 0,
                        t0);
        }
        return;
      }
    }
    if (t0 == 0) {
      t0 = SyncWaitStartNs();
    }
    if (lockdep::Enabled()) {
      lockdep::OnBlock(&sp->lockdep_dbg, lockdep::kSema, LdFlags(sp));
    }
    {
      KernelWaitScope wait(/*indefinite=*/true);
      FutexWait(&sp->count, 0, /*shared=*/true);
    }
    if (lockdep::Enabled()) {
      lockdep::OnUnblock();
    }
  }
}

void SharedV(sema_t* sp) {
  sp->count.fetch_add(1, std::memory_order_release);
  FutexWake(&sp->count, 1, /*shared=*/true);
}

}  // namespace

void sema_init(sema_t* sp, unsigned int count, int type, void* arg) {
  (void)arg;
  sp->count.store(count, std::memory_order_relaxed);
  sp->type = static_cast<uint32_t>(type);
  sp->wait_head = nullptr;
  sp->wait_tail = nullptr;
  // Re-initialization of a previously used variable ("initializing an already
  // initialized variable is legal but ill-advised"): the storage may carry a
  // stale locked qlock image — e.g. memcpy'd from a variable caught mid
  // critical section — which would deadlock the first waiter forever.
  sp->qlock.Reset();
  lockdep::OnInit(&sp->lockdep_dbg, lockdep::kSema,
                  reinterpret_cast<uintptr_t>(__builtin_return_address(0)));
}

void sema_p(sema_t* sp) {
  const uintptr_t caller =
      reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  if (lockdep::Enabled()) {
    lockdep::OnAcquireCheck(&sp->lockdep_dbg, lockdep::kSema, caller);
  }
  if (IsShared(sp)) {
    SharedP(sp);
    if (lockdep::Enabled()) {
      lockdep::OnAcquired(&sp->lockdep_dbg, lockdep::kSema, caller, LdFlags(sp));
    }
    return;
  }
  Tcb* self = sched::CurrentTcbOrAdopt();
  sp->qlock.Lock();
  uint32_t cur = sp->count.load(std::memory_order_relaxed);
  if (cur > 0) {
    sp->count.store(cur - 1, std::memory_order_relaxed);
    sp->qlock.Unlock();
    if (lockdep::Enabled()) {
      lockdep::OnAcquired(&sp->lockdep_dbg, lockdep::kSema, caller, LdFlags(sp));
    }
    return;
  }
  if (lockdep::Enabled()) {
    lockdep::OnBlock(&sp->lockdep_dbg, lockdep::kSema, LdFlags(sp));
  }
  WaitqPush(&sp->wait_head, &sp->wait_tail, self);
  int64_t t0 = SyncWaitStartNs();
  sched::Block(&sp->qlock);
  if (lockdep::Enabled()) {
    lockdep::OnUnblock();
    lockdep::OnAcquired(&sp->lockdep_dbg, lockdep::kSema, caller, LdFlags(sp));
  }
  // Woken by sema_v with the credit handed off directly; nothing to re-check.
  SyncWaitEndNs(LatencyStat::kSemaWaitLocal, TraceEvent::kSemaWait,
                static_cast<uint64_t>(self->id), t0);
}

void sema_v(sema_t* sp) {
  if (lockdep::Enabled()) {
    lockdep::OnRelease(&sp->lockdep_dbg, LdFlags(sp));
  }
  if (IsShared(sp)) {
    SharedV(sp);
    return;
  }
  Tcb* waiter = nullptr;
  {
    SpinLockGuard guard(sp->qlock);
    waiter = WaitqPop(&sp->wait_head, &sp->wait_tail);
    if (waiter == nullptr) {
      sp->count.store(sp->count.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    }
  }
  if (waiter != nullptr) {
    sched::Wake(waiter);
  }
}

int sema_tryp(sema_t* sp) {
  const uintptr_t caller =
      reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  if (IsShared(sp)) {
    uint32_t cur = sp->count.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (sp->count.compare_exchange_weak(cur, cur - 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
        if (lockdep::Enabled()) {
          lockdep::OnAcquired(&sp->lockdep_dbg, lockdep::kSema, caller,
                              LdFlags(sp) | lockdep::kFlagTry);
        }
        return 1;
      }
    }
    return 0;
  }
  bool ok = false;
  {
    SpinLockGuard guard(sp->qlock);
    uint32_t cur = sp->count.load(std::memory_order_relaxed);
    if (cur > 0) {
      sp->count.store(cur - 1, std::memory_order_relaxed);
      ok = true;
    }
  }
  if (ok && lockdep::Enabled()) {
    lockdep::OnAcquired(&sp->lockdep_dbg, lockdep::kSema, caller,
                        LdFlags(sp) | lockdep::kFlagTry);
  }
  return ok ? 1 : 0;
}

void sema_set_name(sema_t* sp, const char* name) {
  lockdep::SetName(&sp->lockdep_dbg, lockdep::kSema, name);
}

void sema_set_order(sema_t* sp, int level) {
  lockdep::SetOrder(&sp->lockdep_dbg, lockdep::kSema, level,
                    reinterpret_cast<uintptr_t>(__builtin_return_address(0)));
}

}  // namespace sunmt
