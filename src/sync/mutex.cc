// Mutex locks.
//
// Variants (paper: "mutual exclusion locks may be implemented as spin locks,
// sleep locks, or adaptive locks"):
//   default / SYNC_ADAPTIVE : CAS fast path, bounded spin, then block the thread
//   SYNC_SPIN               : never blocks the thread; spins with backoff + yield
//   SYNC_DEBUG              : ownership checking (strict bracketing enforcement)
//   THREAD_SYNC_SHARED      : futex protocol on the word, usable across processes

#include "src/sync/sync.h"

#include <stdlib.h>

#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/lwp/kernel_wait.h"
#include "src/lwp/onproc.h"
#include "src/sync/waitq.h"
#include "src/util/check.h"
#include "src/util/futex.h"

namespace sunmt {
namespace {

// Shared-variant word protocol: 0 free, 1 held, 2 held with (possible) waiters.
constexpr uint32_t kFree = 0;
constexpr uint32_t kHeld = 1;
constexpr uint32_t kContended = 2;

// Default adaptive spin budget before blocking (tuned small: blocking is
// cheap here). Overridable via SUNMT_SPIN below.
constexpr int kAdaptiveSpins = 128;

// Tunable spin budget: SUNMT_SPIN=<n> caps the owner-aware spin phase at n
// iterations (0 = never spin, always block on contention). Parsed once on the
// first contended acquisition; every later read is one relaxed load, the same
// disabled-path discipline as SUNMT_INJECT.
std::atomic<int> g_spin_budget{-1};

int LoadSpinBudgetSlow() {
  int budget = kAdaptiveSpins;
  const char* env = getenv("SUNMT_SPIN");
  if (env != nullptr && env[0] != '\0') {
    int parsed = atoi(env);
    if (parsed >= 0) {
      budget = parsed;
    }
  }
  g_spin_budget.store(budget, std::memory_order_relaxed);
  return budget;
}

inline int SpinBudget() {
  int budget = g_spin_budget.load(std::memory_order_relaxed);
  if (__builtin_expect(budget >= 0, 1)) {
    return budget;
  }
  return LoadSpinBudgetSlow();
}

bool IsShared(const mutex_t* mp) { return (mp->type & THREAD_SYNC_SHARED) != 0; }
bool IsSpin(const mutex_t* mp) { return (mp->type & SYNC_SPIN) != 0; }
bool IsDebug(const mutex_t* mp) { return (mp->type & SYNC_DEBUG) != 0; }

// Lockdep acquire/release flags for this mutex (owner tracked for the
// wait-for graph; shared objects get pid-tagged owners + breadcrumbs).
uint32_t LdFlags(const mutex_t* mp) {
  return lockdep::kFlagOwner |
         (IsShared(mp) ? static_cast<uint32_t>(lockdep::kFlagShared) : 0u);
}

// The local blocking variants (adaptive + debug) maintain the owner token the
// owner-aware spin policy reads; spin and shared variants never block a
// thread on the waitq, so they skip the bookkeeping.
bool TracksOwnerToken(const mutex_t* mp) { return !IsShared(mp) && !IsSpin(mp); }

// Publishes "I hold this lock, from this LWP" after an acquisition. Token 0
// (no TCB / no slot) is fine: spinners treat unknown owners as running.
void PublishOwnerToken(mutex_t* mp) {
  Tcb* self = sched::CurrentTcb();
  uint64_t token = 0;
  if (self != nullptr && self->lwp != nullptr) {
    token = onproc::MakeToken(self->lwp->onproc_slot(),
                              static_cast<uint64_t>(self->id));
  }
  mp->owner_token.store(token, std::memory_order_relaxed);
}

// Splits the kMutexWaitAdaptive distribution by how the wait was resolved, so
// the spin-vs-block policy shift is visible in FormatStats() directly.
void RecordAdaptiveOutcome(const mutex_t* mp, int64_t t0, bool resolved_by_spin) {
  if (t0 == 0 || !Stats::Enabled() || IsDebug(mp)) {
    return;
  }
  int64_t waited = MonotonicNowNs() - t0;
  Stats::RecordNs(resolved_by_spin ? LatencyStat::kMutexWaitAdaptiveSpin
                                   : LatencyStat::kMutexWaitAdaptiveBlock,
                  waited > 0 ? waited : 0);
}

// Metrics are keyed by variant so the distributions answer the lock-choice
// question directly (spin vs adaptive vs debug vs shared).
LatencyStat MutexWaitStat(const mutex_t* mp) {
  if (IsShared(mp)) return LatencyStat::kMutexWaitShared;
  if (IsSpin(mp)) return LatencyStat::kMutexWaitSpin;
  if (IsDebug(mp)) return LatencyStat::kMutexWaitDebug;
  return LatencyStat::kMutexWaitAdaptive;
}

LatencyStat MutexHoldStat(const mutex_t* mp) {
  if (IsShared(mp)) return LatencyStat::kMutexHoldShared;
  if (IsSpin(mp)) return LatencyStat::kMutexHoldSpin;
  if (IsDebug(mp)) return LatencyStat::kMutexHoldDebug;
  return LatencyStat::kMutexHoldAdaptive;
}

uint64_t CurrentTid() {
  Tcb* self = sched::CurrentTcb();
  return self != nullptr ? static_cast<uint64_t>(self->id) : 0;
}

// SYNC_DEBUG deadlock detection: each blocker first publishes its own
// wait-for edge (seq_cst), then walks the graph (thread -> mutex it blocks on
// -> that mutex's owner -> ...); reaching ourselves means the cycle is closed.
// Publish-before-scan with seq_cst ordering guarantees that of the threads
// closing a cycle, at least one sees the complete cycle and panics instead of
// deadlocking. The walk only reads SYNC_DEBUG-maintained fields and terminates
// early on any transient inconsistency — a stable cycle (a true deadlock) is
// always stable enough to detect.
void DebugCheckForDeadlock(mutex_t* mp, Tcb* self) {
  self->waiting_for_mutex.store(mp, std::memory_order_seq_cst);
  mutex_t* cursor = mp;
  for (int hops = 0; hops < 64 && cursor != nullptr; ++hops) {
    Tcb* owner = cursor->owner;
    if (owner == nullptr) {
      return;  // lock free or handoff in progress: no stable cycle
    }
    if (owner == self) {
      SUNMT_PANIC("deadlock detected: mutex wait-for cycle (SYNC_DEBUG)");
    }
    cursor =
        static_cast<mutex_t*>(owner->waiting_for_mutex.load(std::memory_order_seq_cst));
  }
}

void SharedEnter(mutex_t* mp) {
  uint32_t cur = kFree;
  if (mp->word.compare_exchange_strong(cur, kHeld, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    return;
  }
  // Contended: the calling thread stays bound to its LWP, which blocks in the
  // kernel (futex) until the holder — possibly in another process — releases.
  int64_t t0 = SyncWaitStartNs();
  {
    KernelWaitScope wait(/*indefinite=*/true);
    while (mp->word.exchange(kContended, std::memory_order_acquire) != kFree) {
      if (lockdep::Enabled()) {
        // Publishes breadcrumbs into our held shared locks and walks the
        // wait-for graph: with seq_cst publish-then-walk, whichever process
        // closes a cross-process cycle sees it before sleeping forever.
        lockdep::OnBlock(&mp->lockdep_dbg, lockdep::kMutex, LdFlags(mp));
      }
      FutexWait(&mp->word, kContended, /*shared=*/true);
    }
  }
  if (lockdep::Enabled()) {
    lockdep::OnUnblock();
  }
  SyncWaitEndNs(LatencyStat::kMutexWaitShared, TraceEvent::kMutexWait,
                CurrentTid(), t0);
}

void SharedExit(mutex_t* mp) {
  if (mp->word.exchange(kFree, std::memory_order_release) == kContended) {
    FutexWake(&mp->word, 1, /*shared=*/true);
  }
}

void LocalEnter(mutex_t* mp) {
  uint32_t cur = kFree;
  if (mp->word.compare_exchange_strong(cur, kHeld, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
    return;
  }
  // Past the uncontended fast path: everything below is a contention wait.
  int64_t t0 = SyncWaitStartNs();
  if (IsSpin(mp)) {
    Backoff backoff;
    int spins = 0;
    for (;;) {
      cur = kFree;
      if (mp->word.compare_exchange_weak(cur, kHeld, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        SyncWaitEndNs(LatencyStat::kMutexWaitSpin, TraceEvent::kMutexWait,
                      CurrentTid(), t0);
        return;
      }
      backoff.Pause();
      // On a single LWP a pure spin would never let the holder run; yield
      // periodically so the spin variant stays usable there.
      if (++spins % 64 == 0) {
        sched::Yield();
      }
    }
  }
  // Adaptive: spin (with exponential backoff) only while the holder is
  // observed ON-PROC — a running holder releases in bounded time, so spinning
  // is cheaper than a block/wake round trip. A parked or preempted holder
  // cannot release no matter how long we spin, so the moment the owner token
  // reads off-proc we queue and block the thread (the LWP goes on to run
  // other threads). An unknown owner (token 0: acquire/release in progress,
  // or a holder with no slot) is treated as running.
  int budget = SpinBudget();
  int pause = 1;  // exponential, but capped low: long pauses straddle hand-offs
  for (int i = 0; i < budget; ++i) {
    cur = kFree;
    if (mp->word.compare_exchange_weak(cur, kHeld, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      SyncWaitEndNs(MutexWaitStat(mp), TraceEvent::kMutexWait, CurrentTid(), t0);
      RecordAdaptiveOutcome(mp, t0, /*resolved_by_spin=*/true);
      return;
    }
    uint64_t owner = mp->owner_token.load(std::memory_order_relaxed);
    if (owner != 0 && !onproc::TokenRunning(owner)) {
      break;  // holder is off its LWP: block immediately
    }
    for (int p = 0; p < pause; ++p) {
      CpuRelax();
    }
    if (pause < 16) {
      pause <<= 1;
    }
  }
  Tcb* self = sched::CurrentTcbOrAdopt();
  mp->qlock.Lock();
  for (;;) {
    cur = kFree;
    if (mp->word.compare_exchange_strong(cur, kHeld, std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      mp->qlock.Unlock();
      SyncWaitEndNs(MutexWaitStat(mp), TraceEvent::kMutexWait,
                    static_cast<uint64_t>(self->id), t0);
      RecordAdaptiveOutcome(mp, t0, /*resolved_by_spin=*/false);
      return;
    }
    if (IsDebug(mp)) {
      DebugCheckForDeadlock(mp, self);  // publishes the wait-for edge first
    }
    if (lockdep::Enabled()) {
      lockdep::OnBlock(&mp->lockdep_dbg, lockdep::kMutex, LdFlags(mp));
    }
    WaitqPush(&mp->wait_head, &mp->wait_tail, self);
    sched::Block(&mp->qlock);  // releases qlock after the context save
    if (lockdep::Enabled()) {
      lockdep::OnUnblock();
    }
    if (IsDebug(mp)) {
      self->waiting_for_mutex.store(nullptr, std::memory_order_release);
    }
    mp->qlock.Lock();
  }
}

void LocalExit(mutex_t* mp) {
  mp->word.store(kFree, std::memory_order_release);
  Tcb* waiter = nullptr;
  {
    SpinLockGuard guard(mp->qlock);
    waiter = WaitqPop(&mp->wait_head, &mp->wait_tail);
  }
  if (waiter != nullptr) {
    sched::Wake(waiter);
  }
}

}  // namespace

void mutex_init(mutex_t* mp, int type, void* arg) {
  (void)arg;  // reserved, per the paper's interface
  mp->word.store(0, std::memory_order_relaxed);
  mp->type = static_cast<uint32_t>(type);
  mp->wait_head = nullptr;
  mp->wait_tail = nullptr;
  mp->owner = nullptr;
  mp->owner_token.store(0, std::memory_order_relaxed);
  mp->acquired_ns = 0;
  mp->qlock.Reset();  // storage may carry a stale locked image (see sema_init)
  lockdep::OnInit(&mp->lockdep_dbg, lockdep::kMutex,
                  reinterpret_cast<uintptr_t>(__builtin_return_address(0)));
}

void mutex_enter(mutex_t* mp) {
  if (IsDebug(mp)) {
    Tcb* self = sched::CurrentTcbOrAdopt();
    SUNMT_CHECK(mp->owner != self);  // recursive enter is a bracketing error
  }
  const uintptr_t caller =
      reinterpret_cast<uintptr_t>(__builtin_return_address(0));
  if (lockdep::Enabled()) {
    // Order check runs before the acquire: an inversion is reported at the
    // second acquisition site even if the schedule never deadlocks.
    lockdep::OnAcquireCheck(&mp->lockdep_dbg, lockdep::kMutex, caller);
  }
  if (IsShared(mp)) {
    SharedEnter(mp);
  } else {
    LocalEnter(mp);
  }
  if (lockdep::Enabled()) {
    lockdep::OnAcquired(&mp->lockdep_dbg, lockdep::kMutex, caller, LdFlags(mp));
  }
  if (TracksOwnerToken(mp)) {
    PublishOwnerToken(mp);
  }
  if (IsDebug(mp)) {
    mp->owner = sched::CurrentTcb();
  }
  if (Stats::Enabled()) {
    mp->acquired_ns = MonotonicNowNs();
  }
}

void mutex_exit(mutex_t* mp) {
  if (lockdep::Enabled()) {
    // Before the word releases: a racing new owner must not see stale
    // ownership, and must not have its fresh ownership wiped by this clear.
    lockdep::OnRelease(&mp->lockdep_dbg, LdFlags(mp));
  }
  if (IsDebug(mp)) {
    // "It is an error for a thread to release a lock not held by the thread."
    Tcb* self = sched::CurrentTcbOrAdopt();
    SUNMT_CHECK(mp->owner == self);
    mp->owner = nullptr;
  }
  if (mp->acquired_ns != 0) {
    // Stats may have been toggled mid-hold; the reset keeps stale timestamps
    // from surviving a disable.
    if (Stats::Enabled()) {
      Stats::RecordNs(MutexHoldStat(mp), MonotonicNowNs() - mp->acquired_ns);
    }
    mp->acquired_ns = 0;
  }
  if (TracksOwnerToken(mp)) {
    // Cleared before the word releases: a spinner may then read a transient 0
    // ("unknown"), which only makes it spin once more and retry the CAS.
    mp->owner_token.store(0, std::memory_order_relaxed);
  }
  if (IsShared(mp)) {
    SharedExit(mp);
  } else {
    LocalExit(mp);
  }
}

int mutex_tryenter(mutex_t* mp) {
  uint32_t cur = kFree;
  bool ok = mp->word.compare_exchange_strong(cur, kHeld, std::memory_order_acquire,
                                             std::memory_order_relaxed);
  if (ok && TracksOwnerToken(mp)) {
    PublishOwnerToken(mp);
  }
  if (ok && IsDebug(mp)) {
    mp->owner = sched::CurrentTcbOrAdopt();
  }
  if (ok && Stats::Enabled()) {
    mp->acquired_ns = MonotonicNowNs();
  }
  if (ok && lockdep::Enabled()) {
    // kFlagTry: a trylock cannot deadlock, so it adds no order edges.
    lockdep::OnAcquired(&mp->lockdep_dbg, lockdep::kMutex,
                        reinterpret_cast<uintptr_t>(__builtin_return_address(0)),
                        LdFlags(mp) | lockdep::kFlagTry);
  }
  return ok ? 1 : 0;
}

void mutex_set_name(mutex_t* mp, const char* name) {
  lockdep::SetName(&mp->lockdep_dbg, lockdep::kMutex, name);
}

void mutex_set_order(mutex_t* mp, int level) {
  lockdep::SetOrder(&mp->lockdep_dbg, lockdep::kMutex, level,
                    reinterpret_cast<uintptr_t>(__builtin_return_address(0)));
}

}  // namespace sunmt
