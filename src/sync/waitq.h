// Internal helpers for the wait queues embedded in synchronization variables.
//
// The queues are singly-linked Tcb chains through Tcb::wait_next so that an
// all-zero sync variable is a valid empty queue (the zero-initialization
// requirement). All operations assume the variable's qlock is held.

#ifndef SUNMT_SRC_SYNC_WAITQ_H_
#define SUNMT_SRC_SYNC_WAITQ_H_

#include "src/core/tcb.h"
#include "src/core/trace.h"
#include "src/stats/stats.h"
#include "src/util/clock.h"

namespace sunmt {

inline void WaitqPush(Tcb** head, Tcb** tail, Tcb* tcb) {
  tcb->wait_next = nullptr;
  if (*tail != nullptr) {
    (*tail)->wait_next = tcb;
  } else {
    *head = tcb;
  }
  *tail = tcb;
}

inline Tcb* WaitqPop(Tcb** head, Tcb** tail) {
  Tcb* tcb = *head;
  if (tcb != nullptr) {
    *head = tcb->wait_next;
    if (*head == nullptr) {
      *tail = nullptr;
    }
    tcb->wait_next = nullptr;
  }
  return tcb;
}

inline Tcb* WaitqPeek(Tcb* head) { return head; }

inline bool WaitqEmpty(const Tcb* head) { return head == nullptr; }

// Removes a specific thread from the chain. Returns true if it was present.
inline bool WaitqRemove(Tcb** head, Tcb** tail, Tcb* tcb) {
  Tcb* prev = nullptr;
  for (Tcb* cur = *head; cur != nullptr; prev = cur, cur = cur->wait_next) {
    if (cur != tcb) {
      continue;
    }
    if (prev != nullptr) {
      prev->wait_next = cur->wait_next;
    } else {
      *head = cur->wait_next;
    }
    if (*tail == cur) {
      *tail = prev;
    }
    cur->wait_next = nullptr;
    return true;
  }
  return false;
}

// ---- Contention-wait timing -------------------------------------------------
// Used on every sync slow path: SyncWaitStartNs() before waiting (0 means
// "don't bother" — neither stats nor trace wants the sample, so no clock is
// read), SyncWaitEndNs() after reacquisition.

inline int64_t SyncWaitStartNs() {
  return (Stats::Enabled() || Trace::IsEnabled()) ? MonotonicNowNs() : 0;
}

inline void SyncWaitEndNs(LatencyStat stat, TraceEvent event, uint64_t tid,
                          int64_t start_ns) {
  if (start_ns == 0) {
    return;
  }
  int64_t waited = MonotonicNowNs() - start_ns;
  if (waited < 0) {
    waited = 0;
  }
  Stats::RecordNs(stat, waited);
  Trace::Record(event, tid, static_cast<uint64_t>(waited));
}

}  // namespace sunmt

#endif  // SUNMT_SRC_SYNC_WAITQ_H_
