// Internal helpers for the wait queues embedded in synchronization variables.
//
// The queues are singly-linked Tcb chains through Tcb::wait_next so that an
// all-zero sync variable is a valid empty queue (the zero-initialization
// requirement). All operations assume the variable's qlock is held.

#ifndef SUNMT_SRC_SYNC_WAITQ_H_
#define SUNMT_SRC_SYNC_WAITQ_H_

#include <sched.h>

#include "src/core/tcb.h"
#include "src/core/trace.h"
#include "src/stats/stats.h"
#include "src/util/clock.h"

namespace sunmt {

// Every push is a new wait instance, so it advances the thread's
// block-generation. Timeout fires validate `generation == block_generation`
// before touching the queue; bumping on EVERY push — not just timed ones — is
// load-bearing: a stale fire whose cancel lost the race must not match a later
// *untimed* wait on the same object. (Flushed out by the shakedown sweep: a
// stale sema_p_timed fire matched a later plain sema_p on the same semaphore
// and woke it without a credit — a phantom credit that overwrote an unread
// message-queue slot.) Timed waiters read block_generation after pushing.
inline void WaitqPush(Tcb** head, Tcb** tail, Tcb* tcb) {
  ++tcb->block_generation;
  tcb->wait_next = nullptr;
  if (*tail != nullptr) {
    (*tail)->wait_next = tcb;
  } else {
    *head = tcb;
  }
  *tail = tcb;
}

inline Tcb* WaitqPop(Tcb** head, Tcb** tail) {
  Tcb* tcb = *head;
  if (tcb != nullptr) {
    *head = tcb->wait_next;
    if (*head == nullptr) {
      *tail = nullptr;
    }
    tcb->wait_next = nullptr;
  }
  return tcb;
}

inline Tcb* WaitqPeek(Tcb* head) { return head; }

inline bool WaitqEmpty(const Tcb* head) { return head == nullptr; }

// True if the thread is on the chain. Lets a racing dequeuer (e.g. a timeout
// fire) validate membership — and, since queued implies alive, safely read the
// TCB — before deciding to remove: remove-then-restore would re-push at the
// tail and silently cost the waiter its FIFO hand-off position.
inline bool WaitqContains(const Tcb* head, const Tcb* tcb) {
  for (const Tcb* cur = head; cur != nullptr; cur = cur->wait_next) {
    if (cur == tcb) {
      return true;
    }
  }
  return false;
}

// Removes a specific thread from the chain. Returns true if it was present.
inline bool WaitqRemove(Tcb** head, Tcb** tail, Tcb* tcb) {
  Tcb* prev = nullptr;
  for (Tcb* cur = *head; cur != nullptr; prev = cur, cur = cur->wait_next) {
    if (cur != tcb) {
      continue;
    }
    if (prev != nullptr) {
      prev->wait_next = cur->wait_next;
    } else {
      *head = cur->wait_next;
    }
    if (*tail == cur) {
      *tail = prev;
    }
    cur->wait_next = nullptr;
    return true;
  }
  return false;
}

// Waits until the in-flight timeout fire identified by `seq_before` (the value
// of self->timeout_fire_seq captured before arming the timer) has finished
// touching the sync variable. Called on the timed-wait return path when
// timer_cancel fails and the waiter was woken normally: the fire WILL run (or
// is running) against this waiter's ctx, and it dereferences the sync variable
// to take its qlock even though it then no-ops — so the waiter must not return
// (after which the caller may destroy the variable) until the fire acks.
// At most one fire per wait can be outstanding, because every cancel-failed
// wait passes through here before the thread can arm another timer.
// The spin is lock-free on the fire side and bounded by the timer engine's
// callback backlog; the waiter holds no locks here.
inline void WaitqAwaitTimeoutFire(Tcb* self, uint64_t seq_before) {
  int spins = 0;
  while (self->timeout_fire_seq.load(std::memory_order_acquire) == seq_before) {
    if (++spins < 64) {
      CpuRelax();
    } else {
      sched_yield();  // fire runs on the timer engine's kernel thread
    }
  }
}

// ---- Contention-wait timing -------------------------------------------------
// Used on every sync slow path: SyncWaitStartNs() before waiting (0 means
// "don't bother" — neither stats nor trace wants the sample, so no clock is
// read), SyncWaitEndNs() after reacquisition.

inline int64_t SyncWaitStartNs() {
  return (Stats::Enabled() || Trace::IsEnabled()) ? MonotonicNowNs() : 0;
}

inline void SyncWaitEndNs(LatencyStat stat, TraceEvent event, uint64_t tid,
                          int64_t start_ns) {
  if (start_ns == 0) {
    return;
  }
  int64_t waited = MonotonicNowNs() - start_ns;
  if (waited < 0) {
    waited = 0;
  }
  Stats::RecordNs(stat, waited);
  Trace::Record(event, tid, static_cast<uint64_t>(waited));
}

}  // namespace sunmt

#endif  // SUNMT_SRC_SYNC_WAITQ_H_
