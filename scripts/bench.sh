#!/usr/bin/env bash
# Runs every bench/abl_* binary and collects the machine-readable
# BENCH_<name>.json line each one emits (see bench/bench_util.h) into
# BENCH_<name>.json files in the repo root, so the perf trajectory is
# recorded per PR instead of scrolling away in a terminal.
#
# Usage: scripts/bench.sh [extra benchmark args...]
#   e.g. scripts/bench.sh --benchmark_min_time=0.2

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

if [[ ! -d "$build/bench" ]]; then
  echo "bench.sh: $build/bench missing — run cmake + build first" >&2
  exit 1
fi

shopt -s nullglob
benches=("$build"/bench/abl_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "bench.sh: no abl_* binaries under $build/bench" >&2
  exit 1
fi

failed=0
for bin in "${benches[@]}"; do
  [[ -x "$bin" && ! -d "$bin" ]] || continue
  name="$(basename "$bin")"
  echo "== $name =="
  out="$("$bin" "$@" 2>&1)" || {
    echo "$out"
    echo "bench.sh: $name FAILED" >&2
    failed=1
    continue
  }
  echo "$out"
  # Each binary prints:  BENCH_<name>.json {"bench":...}
  line="$(printf '%s\n' "$out" | grep -E "^BENCH_${name}\.json " | tail -1 || true)"
  if [[ -z "$line" ]]; then
    echo "bench.sh: $name emitted no BENCH_${name}.json line" >&2
    failed=1
    continue
  fi
  printf '%s\n' "${line#BENCH_${name}.json }" > "$repo/BENCH_${name}.json"
  echo "-> BENCH_${name}.json"
done

exit $failed
