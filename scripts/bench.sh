#!/usr/bin/env bash
# Runs every bench/abl_* binary and collects the machine-readable
# BENCH_<name>.json line each one emits (see bench/bench_util.h) into
# BENCH_<name>.json files in the repo root, so the perf trajectory is
# recorded per PR instead of scrolling away in a terminal.
#
# Usage: scripts/bench.sh [extra benchmark args...]
#   e.g. scripts/bench.sh --benchmark_min_time=0.2
#
# Also guards the shakedown injector's zero-cost-when-disabled claim (with
# SUNMT_INJECT unset, abl_microtask must stay within 1% of the recorded
# baseline plus the measured run-to-run noise floor of two back-to-back runs)
# and the lockdep detector's equivalent claim on abl_mutex_variants with
# SUNMT_DEBUG unset.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

if [[ ! -d "$build/bench" ]]; then
  echo "bench.sh: $build/bench missing — run cmake + build first" >&2
  exit 1
fi

shopt -s nullglob
benches=("$build"/bench/abl_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "bench.sh: no abl_* binaries under $build/bench" >&2
  exit 1
fi

# Stash the previously recorded microtask baseline before the loop overwrites
# it; the injector cost check below compares against it.
prev_micro="$(mktemp)"
prev_scale="$(mktemp)"
prev_mutex="$(mktemp)"
prev_http="$(mktemp)"
prev_timer="$(mktemp)"
prev_echo="$(mktemp)"
trap 'rm -f "$prev_micro" "$prev_scale" "$prev_mutex" "$prev_http" "$prev_timer" "$prev_echo"' EXIT
cp "$repo/BENCH_abl_microtask.json" "$prev_micro" 2>/dev/null || true
cp "$repo/BENCH_abl_thread_scale.json" "$prev_scale" 2>/dev/null || true
cp "$repo/BENCH_abl_mutex_variants.json" "$prev_mutex" 2>/dev/null || true
cp "$repo/BENCH_abl_http_load.json" "$prev_http" 2>/dev/null || true
cp "$repo/BENCH_abl_timer_churn.json" "$prev_timer" 2>/dev/null || true
cp "$repo/BENCH_abl_net_echo.json" "$prev_echo" 2>/dev/null || true

failed=0
for bin in "${benches[@]}"; do
  [[ -x "$bin" && ! -d "$bin" ]] || continue
  name="$(basename "$bin")"
  echo "== $name =="
  out="$("$bin" "$@" 2>&1)" || {
    echo "$out"
    echo "bench.sh: $name FAILED" >&2
    failed=1
    continue
  }
  echo "$out"
  # Each binary prints:  BENCH_<name>.json {"bench":...}
  line="$(printf '%s\n' "$out" | grep -E "^BENCH_${name}\.json " | tail -1 || true)"
  if [[ -z "$line" ]]; then
    echo "bench.sh: $name emitted no BENCH_${name}.json line" >&2
    failed=1
    continue
  fi
  printf '%s\n' "${line#BENCH_${name}.json }" > "$repo/BENCH_${name}.json"
  echo "-> BENCH_${name}.json"
done

# ---- Injector disabled-path cost gate ---------------------------------------
# The shakedown hooks (src/inject) are compiled into every hand-off path; when
# SUNMT_INJECT is unset each one must cost a single relaxed load. Compare the
# fresh abl_microtask numbers against the recorded baseline, allowing 1% plus
# the noise floor measured from a second back-to-back run.
micro="$build/bench/abl_microtask"
if [[ -s "$prev_micro" && -x "$micro" && $failed -eq 0 ]]; then
  echo "== injector disabled-path cost (abl_microtask vs recorded baseline) =="
  out2="$("$micro" "$@" 2>&1)" || { echo "$out2"; exit 1; }
  rerun="$(printf '%s\n' "$out2" | grep -E '^BENCH_abl_microtask\.json ' | tail -1)"
  python3 - "$prev_micro" "$repo/BENCH_abl_microtask.json" <<PY || failed=1
import json, math, sys
prev = json.load(open(sys.argv[1]))["metrics"]
run1 = json.load(open(sys.argv[2]))["metrics"]
run2 = json.loads("""${rerun#BENCH_abl_microtask.json }""")["metrics"]
keys = sorted(set(prev) & set(run1) & set(run2))
if not keys:
    sys.exit("no shared metrics between baseline and fresh runs")
def geomean(vals):
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
noise = geomean([max(run1[k], run2[k]) / min(run1[k], run2[k]) for k in keys]) - 1
cost = geomean([run1[k] / prev[k] for k in keys]) - 1
allowed = 0.01 + noise
print(f"  geomean vs baseline: {cost:+.2%}  (noise floor {noise:.2%}, allowed {allowed:.2%})")
if cost > allowed:
    sys.exit(f"injector disabled-path cost {cost:.2%} exceeds {allowed:.2%}")
print("  injector disabled-path cost within noise")
PY
fi

# ---- Lockdep disabled-path cost gate ----------------------------------------
# The lock-order detector (src/debug/lockdep) hooks every mutex/rwlock/sema/
# condvar acquire; with SUNMT_DEBUG unset each hook must cost one relaxed load.
# Same construction as the injector gate: fresh abl_mutex_variants vs the
# recorded baseline, allowing 1% plus the measured run-to-run noise floor.
mutexb="$build/bench/abl_mutex_variants"
if [[ -s "$prev_mutex" && -x "$mutexb" && $failed -eq 0 ]]; then
  echo "== lockdep disabled-path cost (abl_mutex_variants vs recorded baseline) =="
  out2="$("$mutexb" "$@" 2>&1)" || { echo "$out2"; exit 1; }
  rerun="$(printf '%s\n' "$out2" | grep -E '^BENCH_abl_mutex_variants\.json ' | tail -1)"
  python3 - "$prev_mutex" "$repo/BENCH_abl_mutex_variants.json" <<PY || failed=1
import json, math, sys
prev = json.load(open(sys.argv[1]))["metrics"]
run1 = json.load(open(sys.argv[2]))["metrics"]
run2 = json.loads("""${rerun#BENCH_abl_mutex_variants.json }""")["metrics"]
keys = sorted(set(prev) & set(run1) & set(run2))
if not keys:
    sys.exit("no shared metrics between baseline and fresh runs")
def geomean(vals):
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
noise = geomean([max(run1[k], run2[k]) / min(run1[k], run2[k]) for k in keys]) - 1
cost = geomean([run1[k] / prev[k] for k in keys]) - 1
allowed = 0.01 + noise
print(f"  geomean vs baseline: {cost:+.2%}  (noise floor {noise:.2%}, allowed {allowed:.2%})")
if cost > allowed:
    sys.exit(f"lockdep disabled-path cost {cost:.2%} exceeds {allowed:.2%}")
print("  lockdep disabled-path cost within noise")
PY
fi

# ---- HTTP throughput regression gate ----------------------------------------
# The HTTP server is the end-to-end consumer of the netpoller + unbound-thread
# stack; fail if keep-alive requests/s at either connection scale regresses
# more than 10% + the measured noise floor against the recorded baseline.
# Throughput on the shared 1-CPU box swings ~±25% run to run, so the gate
# takes the best of two runs (the baseline records a median-of-runs figure,
# not a best-of, for the same reason).
httpb="$build/bench/abl_http_load"
if [[ -s "$prev_http" && -s "$repo/BENCH_abl_http_load.json" && -x "$httpb" && $failed -eq 0 ]]; then
  echo "== http throughput (best-of-2 reqs/s vs recorded baseline) =="
  out2="$("$httpb" "$@" 2>&1)" || { echo "$out2"; exit 1; }
  rerun="$(printf '%s\n' "$out2" | grep -E '^BENCH_abl_http_load\.json ' | tail -1)"
  python3 - "$prev_http" "$repo/BENCH_abl_http_load.json" <<PY || failed=1
import json, sys
prev = json.load(open(sys.argv[1]))["metrics"]
run1 = json.load(open(sys.argv[2]))["metrics"]
run2 = json.loads("""${rerun#BENCH_abl_http_load.json }""")["metrics"]
bad = False
for key in ("c1k_reqs_per_s", "c10k_reqs_per_s"):
    if key not in prev or key not in run1 or key not in run2:
        print(f"  {key} missing from baseline or fresh runs; skipping")
        continue
    best = max(run1[key], run2[key])
    noise = best / min(run1[key], run2[key]) - 1
    allowed = 0.10 + noise
    delta = best / prev[key] - 1
    print(f"  {key}: {prev[key]:.0f} -> {best:.0f} best-of-2 "
          f"({delta:+.2%}, noise floor {noise:.2%}, allowed -{allowed:.2%})")
    if delta < -allowed:
        bad = True
if bad:
    sys.exit("http reqs/s regressed beyond 10% + noise floor")
print("  http throughput within bounds")
PY
fi

# ---- Net echo throughput gate ------------------------------------------------
# The echo ablation carries the netpoller's raw numbers across both engines;
# fail if the epoll reqs/s regresses more than 10% + the measured noise floor
# against the recorded baseline, or if the uring completion engine falls more
# than 10% + noise behind epoll within the same runs (the completion engine
# must not cost throughput; uring keys are absent — and the engine comparison
# skipped — on kernels without io_uring). Best-of-2, same construction as the
# http gate.
echob="$build/bench/abl_net_echo"
if [[ -s "$prev_echo" && -s "$repo/BENCH_abl_net_echo.json" && -x "$echob" && $failed -eq 0 ]]; then
  echo "== net echo throughput (best-of-2 reqs/s vs recorded baseline) =="
  out2="$("$echob" "$@" 2>&1)" || { echo "$out2"; exit 1; }
  rerun="$(printf '%s\n' "$out2" | grep -E '^BENCH_abl_net_echo\.json ' | tail -1)"
  python3 - "$prev_echo" "$repo/BENCH_abl_net_echo.json" <<PY || failed=1
import json, sys
prev = json.load(open(sys.argv[1]))["metrics"]
run1 = json.load(open(sys.argv[2]))["metrics"]
run2 = json.loads("""${rerun#BENCH_abl_net_echo.json }""")["metrics"]
key = "poller_reqs_per_s"
if key not in prev or key not in run1 or key not in run2:
    print(f"  {key} missing from baseline or fresh runs; skipping gate")
    sys.exit(0)
bad = False
best_e = max(run1[key], run2[key])
noise_e = best_e / min(run1[key], run2[key]) - 1
allowed = 0.10 + noise_e
delta = best_e / prev[key] - 1
print(f"  {key}: {prev[key]:.0f} -> {best_e:.0f} best-of-2 "
      f"({delta:+.2%}, noise floor {noise_e:.2%}, allowed -{allowed:.2%})")
if delta < -allowed:
    bad = True
ukey = "uring_reqs_per_s"
if ukey in run1 and ukey in run2:
    best_u = max(run1[ukey], run2[ukey])
    noise_u = best_u / min(run1[ukey], run2[ukey]) - 1
    allowed_u = 0.10 + noise_e + noise_u
    ratio = best_u / best_e - 1
    print(f"  uring vs epoll: {best_u:.0f} vs {best_e:.0f} best-of-2 "
          f"({ratio:+.2%}, noise floor {noise_e + noise_u:.2%}, allowed -{allowed_u:.2%})")
    if ratio < -allowed_u:
        bad = True
else:
    print("  uring keys absent (kernel lacks io_uring); engine comparison skipped")
if bad:
    sys.exit("net echo reqs/s out of bounds")
print("  net echo throughput within bounds")
PY
fi

# ---- Timer-wheel speedup gate ------------------------------------------------
# The sharded timing wheel exists to beat the heap engine on cancel/re-arm
# churn against a standing deadline population; abl_timer_churn measures both
# engines from the same binary and must show at least 2x. (The margin is huge
# — the heap cancel is O(n) — so this gate is noise-proof even on the shared
# 1-CPU box; a failure means the ablation plumbing broke or the wheel's fast
# path regressed catastrophically.)
if [[ -s "$repo/BENCH_abl_timer_churn.json" && $failed -eq 0 ]]; then
  echo "== timer-wheel churn speedup (abl_timer_churn, wheel vs heap) =="
  python3 - "$repo/BENCH_abl_timer_churn.json" <<'PY' || failed=1
import json, sys
m = json.load(open(sys.argv[1]))["metrics"]
speedup = m.get("churn_speedup_vs_heap", 0)
print(f"  churn: wheel {m.get('churn_pairs_per_s', 0):.0f} pairs/s, "
      f"heap {m.get('churn_pairs_per_s_heap', 0):.0f} pairs/s "
      f"({speedup:.1f}x, required >= 2x)")
if speedup < 2.0:
    sys.exit(f"timer wheel churn speedup {speedup:.2f}x below the 2x floor")
print("  timer-wheel speedup within bounds")
PY
fi

# ---- Timer-churn regression gate ---------------------------------------------
# The timed-wait hot path (arm/cancel plus the per-wait ctx now coming from the
# object cache) feeds abl_timer_churn's wheel-engine numbers; fail if the
# cancel/re-arm churn rate regresses more than 10% + the measured noise floor
# against the recorded baseline. Same best-of-2 construction as the http gate
# (the shared 1-CPU box swings ~±25% run to run).
timerb="$build/bench/abl_timer_churn"
if [[ -s "$prev_timer" && -s "$repo/BENCH_abl_timer_churn.json" && -x "$timerb" && $failed -eq 0 ]]; then
  echo "== timer churn rate (best-of-2 pairs/s vs recorded baseline) =="
  out2="$("$timerb" "$@" 2>&1)" || { echo "$out2"; exit 1; }
  rerun="$(printf '%s\n' "$out2" | grep -E '^BENCH_abl_timer_churn\.json ' | tail -1)"
  python3 - "$prev_timer" "$repo/BENCH_abl_timer_churn.json" <<PY || failed=1
import json, sys
prev = json.load(open(sys.argv[1]))["metrics"]
run1 = json.load(open(sys.argv[2]))["metrics"]
run2 = json.loads("""${rerun#BENCH_abl_timer_churn.json }""")["metrics"]
key = "churn_pairs_per_s"
if key not in prev or key not in run1 or key not in run2:
    print(f"  {key} missing from baseline or fresh runs; skipping gate")
    sys.exit(0)
best = max(run1[key], run2[key])
noise = best / min(run1[key], run2[key]) - 1
allowed = 0.10 + noise
delta = best / prev[key] - 1
print(f"  {key}: {prev[key]:.0f} -> {best:.0f} best-of-2 "
      f"({delta:+.2%}, noise floor {noise:.2%}, allowed -{allowed:.2%})")
if delta < -allowed:
    sys.exit(f"timer churn rate regressed beyond 10% + noise floor")
print("  timer churn rate within bounds")
PY
fi

# ---- Thread-lifecycle regression gate ---------------------------------------
# The magazine caches + sharded registry carry the thread-scale numbers; fail
# if the per-thread cost of the 16k batch regresses more than 10% against the
# recorded baseline.
if [[ -s "$prev_scale" && -s "$repo/BENCH_abl_thread_scale.json" && $failed -eq 0 ]]; then
  echo "== thread-lifecycle cost (BM_UnboundThreadBatch/16000 vs recorded baseline) =="
  python3 - "$prev_scale" "$repo/BENCH_abl_thread_scale.json" <<'PY' || failed=1
import json, sys
key = "BM_UnboundThreadBatch/16000_real_ns"
prev = json.load(open(sys.argv[1]))["metrics"]
cur = json.load(open(sys.argv[2]))["metrics"]
if key not in prev or key not in cur:
    print(f"  {key} missing from baseline or fresh run; skipping gate")
    sys.exit(0)
n = 16000
prev_per, cur_per = prev[key] / n, cur[key] / n
delta = cur_per / prev_per - 1
print(f"  per-thread: {prev_per:.0f}ns -> {cur_per:.0f}ns ({delta:+.2%}, allowed +10%)")
if delta > 0.10:
    sys.exit(f"thread-lifecycle per-thread cost regressed {delta:.2%} (>10%)")
print("  thread-lifecycle cost within bounds")
PY
fi

exit $failed
