#!/usr/bin/env bash
# Tier-1 gate plus the sanitizer pass on the concurrency-heavy subsystems.
#
#   1. Regular build + full ctest (the ROADMAP tier-1 command).
#   2. SUNMT_SANITIZE=thread build, running the `net` and `stats` labels —
#      the netpoller's park/wake path and the trace/stats seqlock are the two
#      places a data race would live.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -S "$repo" -B "$repo/build" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo
echo "== tsan: net + stats labels =="
cmake -S "$repo" -B "$repo/build-tsan" -DSUNMT_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs"
ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L "net|stats"

echo
echo "check.sh: all green"
