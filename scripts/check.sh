#!/usr/bin/env bash
# Tier-1 gate plus the sanitizer pass on the concurrency-heavy subsystems.
#
#   1. Regular build + full ctest (the ROADMAP tier-1 command).
#   2. SUNMT_SANITIZE=thread build, running the `net`, `http`, `stats`,
#      `sched`, `lifecycle`, and `timer` labels — the netpoller's park/wake
#      path, the HTTP server's connection/cache/logger fan-out, the trace/
#      stats seqlock, the sharded run queue's steal/box migration, the
#      magazine stack cache + sharded registry, and the timing wheel's
#      lock-free cancel/claim protocol are the places a data race would live.
#   3. Lockdep lane: the `lockdep` label (order-inversion + deadlock detector,
#      see src/debug) plain and under TSan, plus a full-suite pass with
#      SUNMT_DEBUG=lockorder to prove the detector stays false-positive-free
#      on every locking pattern the tests exercise.
#   4. Zero-alloc lane: the object-cache steady-state assertion run on its
#      own for visibility — warm caches, churn sema/cv/net deadline waits and
#      HTTP connections, and require the process-wide cache-fallback counter
#      (hot-path `new` calls that missed every magazine/depot) to stay flat.
#   5. Shakedown lane: the `inject` label (seeded perturbation sweep, see
#      src/inject) in both builds, plus an env-injected run of the net/http/
#      stats/sched/lifecycle/timer labels (schedule ops only — fault/short would
#      violate those tests' exact-timing expectations; the http test layers its
#      own fault/short sweep internally). A failing sweep prints the seed that
#      reproduces it; the env lane's banner records its seed in the log.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -S "$repo" -B "$repo/build" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo
echo "== tsan: net + http + stats + sched + lifecycle + timer + uring labels =="
cmake -S "$repo" -B "$repo/build-tsan" -DSUNMT_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs"
# TSan multiplies the http sweep's hand-offs ~10x; the smaller seed count
# keeps it inside the per-test timeout (same trade as the inject lane below).
# The uring label carries the net/http reruns pinned to the completion engine;
# on a kernel without io_uring they report SKIP rather than green.
SUNMT_SHAKEDOWN_SEEDS=16 \
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L "net|http|stats|sched|lifecycle|timer|uring"

echo
echo "== lockdep: lockdep label (plain + tsan) =="
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs" -L lockdep
# The detector's own spinlock-free report path and the held-stack updates are
# exactly the kind of code TSan should look at; the label stays small enough
# to run the full sweep under it.
SUNMT_SHAKEDOWN_SEEDS=16 \
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L lockdep
# The whole suite must also survive with the detector live: every acquire in
# every test doubles as lockdep input, and a false positive would abort here.
SUNMT_DEBUG=lockorder \
  ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo
echo "== zero-alloc: object-cache steady-state assertion =="
# Runs inside the full suite too; the dedicated invocation makes a hot-path
# allocation regression fail loudly under its own banner instead of hiding in
# the tier-1 wall of green.
ctest --test-dir "$repo/build" --output-on-failure -R object_cache_test

echo
echo "== shakedown: inject label (plain + tsan) =="
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs" -L inject
# TSan multiplies every hand-off ~10x; a smaller sweep keeps the lane inside
# the per-test timeout while still varying the decision streams.
SUNMT_SHAKEDOWN_SEEDS=16 \
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L inject

echo
echo "== shakedown: env-injected net/http/stats/sched/lifecycle/timer labels =="
# Schedule-perturbation family only: these tests assert exact counts/latencies
# that injected faults or short transfers would legitimately change. (The http
# test runs its own fault/short sweep internally on top of this.)
inject_seed=$(( $(date +%s) % 10000 ))
echo "SUNMT_INJECT seed=$inject_seed (replay a failure by exporting the same spec)"
SUNMT_INJECT="seed=$inject_seed,rate=0.05,ops=yield|delay|steal" \
  ctest --test-dir "$repo/build" --output-on-failure -j "$jobs" -L "net|http|stats|sched|lifecycle|timer|uring"
SUNMT_INJECT="seed=$inject_seed,rate=0.02,ops=yield|delay|steal" SUNMT_SHAKEDOWN_SEEDS=16 \
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L "net|http|stats|sched|lifecycle|timer|uring"

echo
echo "check.sh: all green"
