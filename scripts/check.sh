#!/usr/bin/env bash
# Tier-1 gate plus the sanitizer pass on the concurrency-heavy subsystems.
#
#   1. Regular build + full ctest (the ROADMAP tier-1 command).
#   2. SUNMT_SANITIZE=thread build, running the `net`, `stats`, and `sched`
#      labels — the netpoller's park/wake path, the trace/stats seqlock, and
#      the sharded run queue's steal/box migration are the places a data race
#      would live.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -S "$repo" -B "$repo/build" >/dev/null
cmake --build "$repo/build" -j "$jobs"
ctest --test-dir "$repo/build" --output-on-failure -j "$jobs"

echo
echo "== tsan: net + stats + sched labels =="
cmake -S "$repo" -B "$repo/build-tsan" -DSUNMT_SANITIZE=thread >/dev/null
cmake --build "$repo/build-tsan" -j "$jobs"
ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs" -L "net|stats|sched"

echo
echo "check.sh: all green"
