# Empty compiler generated dependencies file for sunmt_recordstore.
# This may be replaced when dependencies are built.
