file(REMOVE_RECURSE
  "CMakeFiles/sunmt_recordstore.dir/record_store.cc.o"
  "CMakeFiles/sunmt_recordstore.dir/record_store.cc.o.d"
  "libsunmt_recordstore.a"
  "libsunmt_recordstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_recordstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
