file(REMOVE_RECURSE
  "libsunmt_recordstore.a"
)
