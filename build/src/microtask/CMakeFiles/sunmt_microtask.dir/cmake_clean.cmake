file(REMOVE_RECURSE
  "CMakeFiles/sunmt_microtask.dir/microtask.cc.o"
  "CMakeFiles/sunmt_microtask.dir/microtask.cc.o.d"
  "libsunmt_microtask.a"
  "libsunmt_microtask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_microtask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
