file(REMOVE_RECURSE
  "libsunmt_microtask.a"
)
