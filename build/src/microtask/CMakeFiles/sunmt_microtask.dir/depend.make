# Empty dependencies file for sunmt_microtask.
# This may be replaced when dependencies are built.
