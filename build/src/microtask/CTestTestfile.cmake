# CMake generated Testfile for 
# Source directory: /root/repo/src/microtask
# Build directory: /root/repo/build/src/microtask
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
