file(REMOVE_RECURSE
  "CMakeFiles/sunmt_core.dir/run_queue.cc.o"
  "CMakeFiles/sunmt_core.dir/run_queue.cc.o.d"
  "CMakeFiles/sunmt_core.dir/runtime.cc.o"
  "CMakeFiles/sunmt_core.dir/runtime.cc.o.d"
  "CMakeFiles/sunmt_core.dir/scheduler.cc.o"
  "CMakeFiles/sunmt_core.dir/scheduler.cc.o.d"
  "CMakeFiles/sunmt_core.dir/thread.cc.o"
  "CMakeFiles/sunmt_core.dir/thread.cc.o.d"
  "CMakeFiles/sunmt_core.dir/tls_arena.cc.o"
  "CMakeFiles/sunmt_core.dir/tls_arena.cc.o.d"
  "CMakeFiles/sunmt_core.dir/trace.cc.o"
  "CMakeFiles/sunmt_core.dir/trace.cc.o.d"
  "libsunmt_core.a"
  "libsunmt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
