file(REMOVE_RECURSE
  "libsunmt_core.a"
)
