
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/run_queue.cc" "src/core/CMakeFiles/sunmt_core.dir/run_queue.cc.o" "gcc" "src/core/CMakeFiles/sunmt_core.dir/run_queue.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/sunmt_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/sunmt_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/sunmt_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/sunmt_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/thread.cc" "src/core/CMakeFiles/sunmt_core.dir/thread.cc.o" "gcc" "src/core/CMakeFiles/sunmt_core.dir/thread.cc.o.d"
  "/root/repo/src/core/tls_arena.cc" "src/core/CMakeFiles/sunmt_core.dir/tls_arena.cc.o" "gcc" "src/core/CMakeFiles/sunmt_core.dir/tls_arena.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/sunmt_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/sunmt_core.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lwp/CMakeFiles/sunmt_lwp.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sunmt_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sunmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
