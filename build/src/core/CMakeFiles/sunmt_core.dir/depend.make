# Empty dependencies file for sunmt_core.
# This may be replaced when dependencies are built.
