# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("arch")
subdirs("lwp")
subdirs("core")
subdirs("sync")
subdirs("tls")
subdirs("signal")
subdirs("ipc")
subdirs("io")
subdirs("introspect")
subdirs("timer")
subdirs("rlimit")
subdirs("pthread")
subdirs("microtask")
subdirs("cxx")
subdirs("recordstore")
subdirs("msgq")
