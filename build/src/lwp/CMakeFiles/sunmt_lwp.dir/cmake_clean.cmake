file(REMOVE_RECURSE
  "CMakeFiles/sunmt_lwp.dir/lwp.cc.o"
  "CMakeFiles/sunmt_lwp.dir/lwp.cc.o.d"
  "CMakeFiles/sunmt_lwp.dir/lwp_clock.cc.o"
  "CMakeFiles/sunmt_lwp.dir/lwp_clock.cc.o.d"
  "libsunmt_lwp.a"
  "libsunmt_lwp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_lwp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
