file(REMOVE_RECURSE
  "libsunmt_lwp.a"
)
