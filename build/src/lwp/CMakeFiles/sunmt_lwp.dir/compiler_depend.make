# Empty compiler generated dependencies file for sunmt_lwp.
# This may be replaced when dependencies are built.
