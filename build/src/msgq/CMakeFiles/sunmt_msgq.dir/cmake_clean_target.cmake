file(REMOVE_RECURSE
  "libsunmt_msgq.a"
)
