# Empty compiler generated dependencies file for sunmt_msgq.
# This may be replaced when dependencies are built.
