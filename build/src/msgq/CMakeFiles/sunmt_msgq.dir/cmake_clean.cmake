file(REMOVE_RECURSE
  "CMakeFiles/sunmt_msgq.dir/message_queue.cc.o"
  "CMakeFiles/sunmt_msgq.dir/message_queue.cc.o.d"
  "libsunmt_msgq.a"
  "libsunmt_msgq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_msgq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
