# Empty dependencies file for sunmt_sync.
# This may be replaced when dependencies are built.
