file(REMOVE_RECURSE
  "CMakeFiles/sunmt_sync.dir/condvar.cc.o"
  "CMakeFiles/sunmt_sync.dir/condvar.cc.o.d"
  "CMakeFiles/sunmt_sync.dir/mutex.cc.o"
  "CMakeFiles/sunmt_sync.dir/mutex.cc.o.d"
  "CMakeFiles/sunmt_sync.dir/rwlock.cc.o"
  "CMakeFiles/sunmt_sync.dir/rwlock.cc.o.d"
  "CMakeFiles/sunmt_sync.dir/sema.cc.o"
  "CMakeFiles/sunmt_sync.dir/sema.cc.o.d"
  "libsunmt_sync.a"
  "libsunmt_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
