file(REMOVE_RECURSE
  "libsunmt_sync.a"
)
