file(REMOVE_RECURSE
  "libsunmt_util.a"
)
