# Empty dependencies file for sunmt_util.
# This may be replaced when dependencies are built.
