file(REMOVE_RECURSE
  "CMakeFiles/sunmt_util.dir/check.cc.o"
  "CMakeFiles/sunmt_util.dir/check.cc.o.d"
  "CMakeFiles/sunmt_util.dir/futex.cc.o"
  "CMakeFiles/sunmt_util.dir/futex.cc.o.d"
  "libsunmt_util.a"
  "libsunmt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
