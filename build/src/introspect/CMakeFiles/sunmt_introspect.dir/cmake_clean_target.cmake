file(REMOVE_RECURSE
  "libsunmt_introspect.a"
)
