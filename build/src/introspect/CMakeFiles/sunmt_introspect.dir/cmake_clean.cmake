file(REMOVE_RECURSE
  "CMakeFiles/sunmt_introspect.dir/introspect.cc.o"
  "CMakeFiles/sunmt_introspect.dir/introspect.cc.o.d"
  "libsunmt_introspect.a"
  "libsunmt_introspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_introspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
