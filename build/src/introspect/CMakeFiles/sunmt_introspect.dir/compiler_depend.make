# Empty compiler generated dependencies file for sunmt_introspect.
# This may be replaced when dependencies are built.
