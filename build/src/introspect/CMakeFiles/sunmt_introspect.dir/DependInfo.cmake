
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/introspect/introspect.cc" "src/introspect/CMakeFiles/sunmt_introspect.dir/introspect.cc.o" "gcc" "src/introspect/CMakeFiles/sunmt_introspect.dir/introspect.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sunmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lwp/CMakeFiles/sunmt_lwp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sunmt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sunmt_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
