# Empty compiler generated dependencies file for sunmt_timer.
# This may be replaced when dependencies are built.
