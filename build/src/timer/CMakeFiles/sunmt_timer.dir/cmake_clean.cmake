file(REMOVE_RECURSE
  "CMakeFiles/sunmt_timer.dir/condvar_timed.cc.o"
  "CMakeFiles/sunmt_timer.dir/condvar_timed.cc.o.d"
  "CMakeFiles/sunmt_timer.dir/sema_timed.cc.o"
  "CMakeFiles/sunmt_timer.dir/sema_timed.cc.o.d"
  "CMakeFiles/sunmt_timer.dir/timer.cc.o"
  "CMakeFiles/sunmt_timer.dir/timer.cc.o.d"
  "libsunmt_timer.a"
  "libsunmt_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
