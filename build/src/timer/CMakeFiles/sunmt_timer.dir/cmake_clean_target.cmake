file(REMOVE_RECURSE
  "libsunmt_timer.a"
)
