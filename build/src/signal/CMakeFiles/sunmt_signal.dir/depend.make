# Empty dependencies file for sunmt_signal.
# This may be replaced when dependencies are built.
