file(REMOVE_RECURSE
  "CMakeFiles/sunmt_signal.dir/signal.cc.o"
  "CMakeFiles/sunmt_signal.dir/signal.cc.o.d"
  "libsunmt_signal.a"
  "libsunmt_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
