file(REMOVE_RECURSE
  "libsunmt_signal.a"
)
