# Empty dependencies file for sunmt_rlimit.
# This may be replaced when dependencies are built.
