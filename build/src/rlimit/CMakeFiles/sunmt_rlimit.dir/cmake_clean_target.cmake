file(REMOVE_RECURSE
  "libsunmt_rlimit.a"
)
