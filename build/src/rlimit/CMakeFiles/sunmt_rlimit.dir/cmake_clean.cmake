file(REMOVE_RECURSE
  "CMakeFiles/sunmt_rlimit.dir/rlimit.cc.o"
  "CMakeFiles/sunmt_rlimit.dir/rlimit.cc.o.d"
  "libsunmt_rlimit.a"
  "libsunmt_rlimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_rlimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
