file(REMOVE_RECURSE
  "libsunmt_io.a"
)
