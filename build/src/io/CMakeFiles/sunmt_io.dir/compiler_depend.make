# Empty compiler generated dependencies file for sunmt_io.
# This may be replaced when dependencies are built.
