file(REMOVE_RECURSE
  "CMakeFiles/sunmt_io.dir/io.cc.o"
  "CMakeFiles/sunmt_io.dir/io.cc.o.d"
  "libsunmt_io.a"
  "libsunmt_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
