file(REMOVE_RECURSE
  "CMakeFiles/sunmt_ipc.dir/fork1.cc.o"
  "CMakeFiles/sunmt_ipc.dir/fork1.cc.o.d"
  "CMakeFiles/sunmt_ipc.dir/shared_arena.cc.o"
  "CMakeFiles/sunmt_ipc.dir/shared_arena.cc.o.d"
  "libsunmt_ipc.a"
  "libsunmt_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
