file(REMOVE_RECURSE
  "libsunmt_ipc.a"
)
