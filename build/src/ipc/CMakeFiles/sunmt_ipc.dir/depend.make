# Empty dependencies file for sunmt_ipc.
# This may be replaced when dependencies are built.
