file(REMOVE_RECURSE
  "CMakeFiles/sunmt_pthread.dir/pthread_compat.cc.o"
  "CMakeFiles/sunmt_pthread.dir/pthread_compat.cc.o.d"
  "libsunmt_pthread.a"
  "libsunmt_pthread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_pthread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
