# Empty compiler generated dependencies file for sunmt_pthread.
# This may be replaced when dependencies are built.
