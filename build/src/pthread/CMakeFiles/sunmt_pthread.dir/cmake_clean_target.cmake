file(REMOVE_RECURSE
  "libsunmt_pthread.a"
)
