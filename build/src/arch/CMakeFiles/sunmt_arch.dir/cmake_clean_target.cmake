file(REMOVE_RECURSE
  "libsunmt_arch.a"
)
