file(REMOVE_RECURSE
  "CMakeFiles/sunmt_arch.dir/context_asm.cc.o"
  "CMakeFiles/sunmt_arch.dir/context_asm.cc.o.d"
  "CMakeFiles/sunmt_arch.dir/context_ucontext.cc.o"
  "CMakeFiles/sunmt_arch.dir/context_ucontext.cc.o.d"
  "CMakeFiles/sunmt_arch.dir/context_x86_64.S.o"
  "CMakeFiles/sunmt_arch.dir/stack.cc.o"
  "CMakeFiles/sunmt_arch.dir/stack.cc.o.d"
  "libsunmt_arch.a"
  "libsunmt_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/sunmt_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
