# Empty compiler generated dependencies file for sunmt_arch.
# This may be replaced when dependencies are built.
