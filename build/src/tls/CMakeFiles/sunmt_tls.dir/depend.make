# Empty dependencies file for sunmt_tls.
# This may be replaced when dependencies are built.
