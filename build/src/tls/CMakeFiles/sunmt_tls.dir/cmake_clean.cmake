file(REMOVE_RECURSE
  "CMakeFiles/sunmt_tls.dir/tsd.cc.o"
  "CMakeFiles/sunmt_tls.dir/tsd.cc.o.d"
  "libsunmt_tls.a"
  "libsunmt_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunmt_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
