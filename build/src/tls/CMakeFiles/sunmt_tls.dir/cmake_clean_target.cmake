file(REMOVE_RECURSE
  "libsunmt_tls.a"
)
