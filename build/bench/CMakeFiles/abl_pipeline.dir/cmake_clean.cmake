file(REMOVE_RECURSE
  "CMakeFiles/abl_pipeline.dir/abl_pipeline.cc.o"
  "CMakeFiles/abl_pipeline.dir/abl_pipeline.cc.o.d"
  "abl_pipeline"
  "abl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
