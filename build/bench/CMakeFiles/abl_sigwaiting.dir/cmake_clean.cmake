file(REMOVE_RECURSE
  "CMakeFiles/abl_sigwaiting.dir/abl_sigwaiting.cc.o"
  "CMakeFiles/abl_sigwaiting.dir/abl_sigwaiting.cc.o.d"
  "abl_sigwaiting"
  "abl_sigwaiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sigwaiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
