# Empty compiler generated dependencies file for abl_sigwaiting.
# This may be replaced when dependencies are built.
