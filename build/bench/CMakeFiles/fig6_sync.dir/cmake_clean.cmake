file(REMOVE_RECURSE
  "CMakeFiles/fig6_sync.dir/fig6_sync.cc.o"
  "CMakeFiles/fig6_sync.dir/fig6_sync.cc.o.d"
  "fig6_sync"
  "fig6_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
