# Empty compiler generated dependencies file for abl_rwlock.
# This may be replaced when dependencies are built.
