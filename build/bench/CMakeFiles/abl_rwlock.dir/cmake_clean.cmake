file(REMOVE_RECURSE
  "CMakeFiles/abl_rwlock.dir/abl_rwlock.cc.o"
  "CMakeFiles/abl_rwlock.dir/abl_rwlock.cc.o.d"
  "abl_rwlock"
  "abl_rwlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rwlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
