# Empty compiler generated dependencies file for abl_record_locks.
# This may be replaced when dependencies are built.
