file(REMOVE_RECURSE
  "CMakeFiles/abl_record_locks.dir/abl_record_locks.cc.o"
  "CMakeFiles/abl_record_locks.dir/abl_record_locks.cc.o.d"
  "abl_record_locks"
  "abl_record_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_record_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
