file(REMOVE_RECURSE
  "CMakeFiles/abl_microtask.dir/abl_microtask.cc.o"
  "CMakeFiles/abl_microtask.dir/abl_microtask.cc.o.d"
  "abl_microtask"
  "abl_microtask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_microtask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
