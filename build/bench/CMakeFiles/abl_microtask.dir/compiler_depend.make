# Empty compiler generated dependencies file for abl_microtask.
# This may be replaced when dependencies are built.
