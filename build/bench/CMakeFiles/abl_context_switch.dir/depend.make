# Empty dependencies file for abl_context_switch.
# This may be replaced when dependencies are built.
