file(REMOVE_RECURSE
  "CMakeFiles/abl_context_switch.dir/abl_context_switch.cc.o"
  "CMakeFiles/abl_context_switch.dir/abl_context_switch.cc.o.d"
  "abl_context_switch"
  "abl_context_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_context_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
