# Empty dependencies file for abl_mutex_variants.
# This may be replaced when dependencies are built.
