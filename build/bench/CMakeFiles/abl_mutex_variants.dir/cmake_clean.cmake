file(REMOVE_RECURSE
  "CMakeFiles/abl_mutex_variants.dir/abl_mutex_variants.cc.o"
  "CMakeFiles/abl_mutex_variants.dir/abl_mutex_variants.cc.o.d"
  "abl_mutex_variants"
  "abl_mutex_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mutex_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
