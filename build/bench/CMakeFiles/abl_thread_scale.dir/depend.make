# Empty dependencies file for abl_thread_scale.
# This may be replaced when dependencies are built.
