file(REMOVE_RECURSE
  "CMakeFiles/abl_thread_scale.dir/abl_thread_scale.cc.o"
  "CMakeFiles/abl_thread_scale.dir/abl_thread_scale.cc.o.d"
  "abl_thread_scale"
  "abl_thread_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thread_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
