file(REMOVE_RECURSE
  "CMakeFiles/abl_concurrency.dir/abl_concurrency.cc.o"
  "CMakeFiles/abl_concurrency.dir/abl_concurrency.cc.o.d"
  "abl_concurrency"
  "abl_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
