# Empty compiler generated dependencies file for abl_concurrency.
# This may be replaced when dependencies are built.
