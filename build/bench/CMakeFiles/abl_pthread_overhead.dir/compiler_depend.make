# Empty compiler generated dependencies file for abl_pthread_overhead.
# This may be replaced when dependencies are built.
