file(REMOVE_RECURSE
  "CMakeFiles/abl_pthread_overhead.dir/abl_pthread_overhead.cc.o"
  "CMakeFiles/abl_pthread_overhead.dir/abl_pthread_overhead.cc.o.d"
  "abl_pthread_overhead"
  "abl_pthread_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pthread_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
