file(REMOVE_RECURSE
  "CMakeFiles/fig5_thread_create.dir/fig5_thread_create.cc.o"
  "CMakeFiles/fig5_thread_create.dir/fig5_thread_create.cc.o.d"
  "fig5_thread_create"
  "fig5_thread_create.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_thread_create.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
