file(REMOVE_RECURSE
  "CMakeFiles/cxx_test.dir/cxx_test.cc.o"
  "CMakeFiles/cxx_test.dir/cxx_test.cc.o.d"
  "cxx_test"
  "cxx_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
