# Empty dependencies file for cxx_test.
# This may be replaced when dependencies are built.
