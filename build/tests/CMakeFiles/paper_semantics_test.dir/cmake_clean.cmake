file(REMOVE_RECURSE
  "CMakeFiles/paper_semantics_test.dir/paper_semantics_test.cc.o"
  "CMakeFiles/paper_semantics_test.dir/paper_semantics_test.cc.o.d"
  "paper_semantics_test"
  "paper_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
