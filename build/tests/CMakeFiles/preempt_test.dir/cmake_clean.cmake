file(REMOVE_RECURSE
  "CMakeFiles/preempt_test.dir/preempt_test.cc.o"
  "CMakeFiles/preempt_test.dir/preempt_test.cc.o.d"
  "preempt_test"
  "preempt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preempt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
