# Empty compiler generated dependencies file for preempt_test.
# This may be replaced when dependencies are built.
