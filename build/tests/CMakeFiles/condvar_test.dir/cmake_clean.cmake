file(REMOVE_RECURSE
  "CMakeFiles/condvar_test.dir/condvar_test.cc.o"
  "CMakeFiles/condvar_test.dir/condvar_test.cc.o.d"
  "condvar_test"
  "condvar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condvar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
