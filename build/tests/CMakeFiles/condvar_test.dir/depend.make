# Empty dependencies file for condvar_test.
# This may be replaced when dependencies are built.
