# Empty compiler generated dependencies file for microtask_test.
# This may be replaced when dependencies are built.
