file(REMOVE_RECURSE
  "CMakeFiles/microtask_test.dir/microtask_test.cc.o"
  "CMakeFiles/microtask_test.dir/microtask_test.cc.o.d"
  "microtask_test"
  "microtask_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microtask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
