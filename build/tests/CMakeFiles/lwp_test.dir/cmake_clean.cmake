file(REMOVE_RECURSE
  "CMakeFiles/lwp_test.dir/lwp_test.cc.o"
  "CMakeFiles/lwp_test.dir/lwp_test.cc.o.d"
  "lwp_test"
  "lwp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lwp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
