file(REMOVE_RECURSE
  "CMakeFiles/recordstore_test.dir/recordstore_test.cc.o"
  "CMakeFiles/recordstore_test.dir/recordstore_test.cc.o.d"
  "recordstore_test"
  "recordstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recordstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
