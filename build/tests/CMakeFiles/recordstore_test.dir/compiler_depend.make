# Empty compiler generated dependencies file for recordstore_test.
# This may be replaced when dependencies are built.
