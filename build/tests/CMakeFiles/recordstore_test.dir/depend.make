# Empty dependencies file for recordstore_test.
# This may be replaced when dependencies are built.
