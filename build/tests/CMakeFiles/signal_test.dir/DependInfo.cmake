
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/signal_test.cc" "tests/CMakeFiles/signal_test.dir/signal_test.cc.o" "gcc" "tests/CMakeFiles/signal_test.dir/signal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msgq/CMakeFiles/sunmt_msgq.dir/DependInfo.cmake"
  "/root/repo/build/src/recordstore/CMakeFiles/sunmt_recordstore.dir/DependInfo.cmake"
  "/root/repo/build/src/microtask/CMakeFiles/sunmt_microtask.dir/DependInfo.cmake"
  "/root/repo/build/src/pthread/CMakeFiles/sunmt_pthread.dir/DependInfo.cmake"
  "/root/repo/build/src/rlimit/CMakeFiles/sunmt_rlimit.dir/DependInfo.cmake"
  "/root/repo/build/src/timer/CMakeFiles/sunmt_timer.dir/DependInfo.cmake"
  "/root/repo/build/src/introspect/CMakeFiles/sunmt_introspect.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sunmt_io.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/sunmt_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/sunmt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/sunmt_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/sunmt_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sunmt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lwp/CMakeFiles/sunmt_lwp.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/sunmt_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sunmt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
