# Empty dependencies file for pthread_test.
# This may be replaced when dependencies are built.
