file(REMOVE_RECURSE
  "CMakeFiles/pthread_test.dir/pthread_test.cc.o"
  "CMakeFiles/pthread_test.dir/pthread_test.cc.o.d"
  "pthread_test"
  "pthread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pthread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
