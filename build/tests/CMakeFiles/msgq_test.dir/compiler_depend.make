# Empty compiler generated dependencies file for msgq_test.
# This may be replaced when dependencies are built.
