file(REMOVE_RECURSE
  "CMakeFiles/msgq_test.dir/msgq_test.cc.o"
  "CMakeFiles/msgq_test.dir/msgq_test.cc.o.d"
  "msgq_test"
  "msgq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
