# Empty compiler generated dependencies file for network_server.
# This may be replaced when dependencies are built.
