file(REMOVE_RECURSE
  "CMakeFiles/network_server.dir/network_server.cpp.o"
  "CMakeFiles/network_server.dir/network_server.cpp.o.d"
  "network_server"
  "network_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
