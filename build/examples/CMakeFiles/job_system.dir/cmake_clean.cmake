file(REMOVE_RECURSE
  "CMakeFiles/job_system.dir/job_system.cpp.o"
  "CMakeFiles/job_system.dir/job_system.cpp.o.d"
  "job_system"
  "job_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
