# Empty compiler generated dependencies file for job_system.
# This may be replaced when dependencies are built.
