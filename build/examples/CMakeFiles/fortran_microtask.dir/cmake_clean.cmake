file(REMOVE_RECURSE
  "CMakeFiles/fortran_microtask.dir/fortran_microtask.cpp.o"
  "CMakeFiles/fortran_microtask.dir/fortran_microtask.cpp.o.d"
  "fortran_microtask"
  "fortran_microtask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortran_microtask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
