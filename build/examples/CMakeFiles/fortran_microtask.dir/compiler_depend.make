# Empty compiler generated dependencies file for fortran_microtask.
# This may be replaced when dependencies are built.
