file(REMOVE_RECURSE
  "CMakeFiles/realtime_mixed.dir/realtime_mixed.cpp.o"
  "CMakeFiles/realtime_mixed.dir/realtime_mixed.cpp.o.d"
  "realtime_mixed"
  "realtime_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
