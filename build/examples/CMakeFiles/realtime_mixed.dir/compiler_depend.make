# Empty compiler generated dependencies file for realtime_mixed.
# This may be replaced when dependencies are built.
