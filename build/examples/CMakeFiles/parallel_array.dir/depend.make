# Empty dependencies file for parallel_array.
# This may be replaced when dependencies are built.
