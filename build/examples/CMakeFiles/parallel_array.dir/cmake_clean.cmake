file(REMOVE_RECURSE
  "CMakeFiles/parallel_array.dir/parallel_array.cpp.o"
  "CMakeFiles/parallel_array.dir/parallel_array.cpp.o.d"
  "parallel_array"
  "parallel_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
