// Window system: the paper's flagship "thousands of threads" scenario.
//
// "A window system can treat each widget as a separate entity ... although the
// window system may be best expressed as a large number of threads, only a few
// of the threads ever need to be active at the same instant."
//
// Each widget gets an input-handler thread and an output-handler thread —
// 2*kWidgets unbound threads — multiplexed on the process's small LWP pool.
// An event pump dispatches synthetic input events; input handlers process them
// and queue redraw requests, which output handlers consume. At the end we print
// how many kernel execution vehicles (LWPs) the whole circus actually used.

#include <atomic>
#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "src/tls/thread_local.h"
#include "src/util/rng.h"

namespace {

constexpr int kWidgets = 1000;
constexpr int kEvents = 20000;

struct Widget {
  sunmt::sema_t input_events;  // pending clicks/keys for this widget
  sunmt::sema_t redraws;       // pending redraw requests
  int clicks = 0;              // touched only by the input handler
  int draws = 0;               // touched only by the output handler
  // Set by the pump once dispatch is complete; -1 = still dispatching. The
  // handlers exit after processing exactly this many events (the pump posts one
  // extra "sentinel" credit so a handler blocked on an empty queue wakes up).
  std::atomic<int> total{-1};
};

Widget g_widgets[kWidgets];
sunmt::sema_t g_input_done;
sunmt::sema_t g_output_done;
sunmt::ThreadLocal<int> tls_widget_index;  // per-thread identity, zero-initialized

void InputHandler(void* arg) {
  int index = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  tls_widget_index.Get() = index;
  Widget& w = g_widgets[index];
  for (;;) {
    sunmt::sema_p(&w.input_events);
    int total = w.total.load(std::memory_order_acquire);
    if (total >= 0 && w.clicks == total) {
      break;  // sentinel: everything processed
    }
    ++w.clicks;
    sunmt::sema_v(&w.redraws);  // every input event triggers a redraw
  }
  sunmt::sema_v(&w.redraws);  // sentinel for the output handler
  sunmt::sema_v(&g_input_done);
}

void OutputHandler(void* arg) {
  int index = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  Widget& w = g_widgets[index];
  for (;;) {
    sunmt::sema_p(&w.redraws);
    int total = w.total.load(std::memory_order_acquire);
    if (total >= 0 && w.draws == total) {
      break;
    }
    ++w.draws;
  }
  sunmt::sema_v(&g_output_done);
}

}  // namespace

int main() {
  printf("window_system: %d widgets = %d threads on a small LWP pool\n", kWidgets,
         2 * kWidgets);

  for (int i = 0; i < kWidgets; ++i) {
    auto arg = reinterpret_cast<void*>(static_cast<intptr_t>(i));
    sunmt::thread_create(nullptr, 0, &InputHandler, arg, 0);
    sunmt::thread_create(nullptr, 0, &OutputHandler, arg, 0);
  }

  // The event pump: random clicks across widgets, handled concurrently.
  sunmt::SplitMix64 rng(2026);
  static int per_widget[kWidgets];
  for (int e = 0; e < kEvents; ++e) {
    int target = static_cast<int>(rng.NextBounded(kWidgets));
    ++per_widget[target];
    sunmt::sema_v(&g_widgets[target].input_events);
  }
  // Dispatch complete: publish totals and wake everyone for the final check.
  for (int i = 0; i < kWidgets; ++i) {
    g_widgets[i].total.store(per_widget[i], std::memory_order_release);
    sunmt::sema_v(&g_widgets[i].input_events);  // sentinel credit
  }
  for (int i = 0; i < kWidgets; ++i) {
    sunmt::sema_p(&g_input_done);
    sunmt::sema_p(&g_output_done);
  }

  long total_clicks = 0, total_draws = 0;
  for (const Widget& w : g_widgets) {
    total_clicks += w.clicks;
    total_draws += w.draws;
  }
  printf("dispatched %d events; handlers processed %ld inputs, %ld redraws\n", kEvents,
         total_clicks, total_draws);
  printf("LWP pool size used for %d threads: %d\n", 2 * kWidgets,
         sunmt::Runtime::Get().pool_size());
  return total_clicks == kEvents && total_draws == kEvents ? 0 : 1;
}
