// Quickstart: the smallest useful sunmt program.
//
// Creates a handful of lightweight (unbound) threads that cooperate through a
// mutex and a semaphore, waits for a THREAD_WAIT thread, and prints the
// process state. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/thread.h"
#include "src/core/trace.h"
#include "src/introspect/introspect.h"
#include "src/stats/stats.h"
#include "src/sync/sync.h"

namespace {

// Synchronization variables: zero-initialized statics are immediately usable.
sunmt::mutex_t g_lock;
sunmt::sema_t g_done;
long g_total = 0;

void Worker(void* arg) {
  long amount = reinterpret_cast<intptr_t>(arg);
  for (int i = 0; i < 1000; ++i) {
    sunmt::mutex_enter(&g_lock);
    g_total += amount;
    if (i % 128 == 0) {
      // Yield inside the critical section so the other workers pile up on the
      // mutex — gives the contention histograms something to record.
      sunmt::thread_yield();
    }
    sunmt::mutex_exit(&g_lock);
  }
  sunmt::sema_v(&g_done);
}

void Reporter(void*) {
  printf("[reporter] I am thread %llu, reporting from a THREAD_WAIT thread\n",
         static_cast<unsigned long long>(sunmt::thread_get_id()));
}

}  // namespace

int main() {
  printf("sunmt quickstart: %d workers accumulating under a mutex\n", 8);

  // Eight extremely lightweight threads; creation never enters the kernel.
  for (long w = 1; w <= 8; ++w) {
    sunmt::thread_id_t id = sunmt::thread_create(
        nullptr, 0, &Worker, reinterpret_cast<void*>(w), /*flags=*/0);
    if (id == 0) {
      fprintf(stderr, "thread_create failed\n");
      return 1;
    }
  }
  for (int w = 0; w < 8; ++w) {
    sunmt::sema_p(&g_done);
  }
  printf("total = %ld (expected %ld)\n", g_total, (1L + 8) * 8 / 2 * 1000);

  // THREAD_WAIT threads can be joined; their IDs stay valid until reaped.
  sunmt::thread_id_t reporter =
      sunmt::thread_create(nullptr, 0, &Reporter, nullptr, sunmt::THREAD_WAIT);
  sunmt::thread_id_t reaped = sunmt::thread_wait(reporter);
  printf("thread_wait(%llu) -> %llu\n", static_cast<unsigned long long>(reporter),
         static_cast<unsigned long long>(reaped));

  // The /proc-style view of the process. With SUNMT_STATS=1 this includes the
  // latency-quantile tables; with SUNMT_TRACE=<capacity> the trace ring is on
  // and can be exported for chrome://tracing.
  printf("\nProcess state:\n");
  sunmt::DumpProcessState(stdout);
  if (sunmt::Trace::IsEnabled()) {
    std::string json = sunmt::Trace::ExportChromeJson();
    FILE* f = fopen("quickstart_trace.json", "w");
    if (f != nullptr) {
      fwrite(json.data(), 1, json.size(), f);
      fclose(f);
      printf("\nwrote quickstart_trace.json (%zu bytes) -- load it in "
             "chrome://tracing or https://ui.perfetto.dev\n",
             json.size());
    }
  }
  return 0;
}
