// Real-time mixed workload: bound + unbound threads in one program.
//
// The paper: "A mixture of threads that are permanently bound to LWPs and
// unbound threads is also appropriate for some applications. An example of this
// would be some real-time applications that want some threads to have
// system-wide priority and real-time scheduling, while other threads can attend
// to background computations." (And contra Chorus: "SunOS meets this
// requirement by allowing a thread to bind to an LWP and thus achieve a
// system-wide scheduling priority.")
//
// The "control loop" is a bound thread whose LWP is put in the real-time
// scheduling class, woken by a periodic timer signal handled on an alternate
// signal stack; background workers are unbound threads churning on the pool.
// The program reports the control loop's activation jitter while the
// background load runs — the paper's reason real-time threads must be bound.

#include <atomic>
#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/scheduler.h"
#include "src/core/tcb.h"
#include "src/lwp/lwp.h"
#include "src/signal/signal.h"
#include "src/sync/sync.h"
#include "src/timer/timer.h"
#include "src/util/clock.h"

namespace {

constexpr int kActivations = 100;
constexpr int64_t kPeriodNs = 2 * 1000 * 1000;  // 2ms control period

std::atomic<int> g_activations{0};
std::atomic<int64_t> g_last_activation_ns{0};
std::atomic<int64_t> g_max_jitter_ns{0};
std::atomic<bool> g_on_altstack_seen{false};
sunmt::sema_t g_control_done;

void ControlTick(int) {
  // Runs on the bound thread's alternate signal stack.
  if (sunmt::signal_on_altstack()) {
    g_on_altstack_seen.store(true);
  }
  int64_t now = sunmt::MonotonicNowNs();
  int64_t last = g_last_activation_ns.exchange(now);
  if (last != 0) {
    int64_t jitter = now - last - kPeriodNs;
    jitter = jitter < 0 ? -jitter : jitter;
    int64_t prev = g_max_jitter_ns.load();
    while (jitter > prev && !g_max_jitter_ns.compare_exchange_weak(prev, jitter)) {
    }
  }
  g_activations.fetch_add(1);
}

void ControlLoop(void*) {
  // Bound thread: give its LWP the real-time class and system-wide priority.
  sunmt::Tcb* self = sunmt::sched::CurrentTcb();
  self->bound_lwp->SetScheduling(sunmt::SchedClass::kRealtime, 10);
  sunmt::thread_priority(0, 127);

  static char altstack[64 * 1024];
  if (sunmt::signal_altstack(altstack, sizeof(altstack)) != 0) {
    fprintf(stderr, "altstack install failed\n");
  }
  sunmt::signal_handler_set(sunmt::SIG_ALRM, &ControlTick);
  sunmt::timer_id_t timer =
      sunmt::timer_arm(kPeriodNs, kPeriodNs, sunmt::SIG_ALRM, sunmt::thread_get_id());

  // The control loop: wait for each activation (delivered as a signal at the
  // next safe point) and do a tiny bit of "actuation" work.
  while (g_activations.load() < kActivations) {
    sunmt::thread_poll();   // signal delivery safe point
    sunmt::thread_yield();  // bound: host-level yield
  }
  sunmt::timer_cancel(timer);
  sunmt::sema_v(&g_control_done);
}

std::atomic<bool> g_stop_background{false};
std::atomic<long> g_background_work{0};

void BackgroundWorker(void*) {
  while (!g_stop_background.load()) {
    volatile long sink = 0;
    for (int i = 0; i < 20000; ++i) {
      sink = sink + i;
    }
    g_background_work.fetch_add(1);
    sunmt::thread_yield();
  }
}

}  // namespace

int main() {
  printf("realtime_mixed: bound real-time control loop (%0.1fms period) + %d unbound "
         "background workers\n",
         kPeriodNs / 1e6, 4);

  for (int i = 0; i < 4; ++i) {
    sunmt::thread_create(nullptr, 0, &BackgroundWorker, nullptr, 0);
  }
  sunmt::thread_create(nullptr, 0, &ControlLoop, nullptr, sunmt::THREAD_BIND_LWP);

  sunmt::sema_p(&g_control_done);
  g_stop_background.store(true);

  printf("control loop: %d activations, max jitter %.2f ms (period %.1f ms)\n",
         g_activations.load(), g_max_jitter_ns.load() / 1e6, kPeriodNs / 1e6);
  printf("handler ran on the alternate stack: %s\n",
         g_on_altstack_seen.load() ? "yes" : "no");
  printf("background work units completed meanwhile: %ld\n", g_background_work.load());
  return g_activations.load() >= kActivations && g_on_altstack_seen.load() ? 0 : 1;
}
