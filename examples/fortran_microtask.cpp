// Micro-tasking: a "Fortran compiler run-time" built on raw LWPs.
//
// The paper: "Some languages define concurrency mechanisms that are different
// from threads. An example is a Fortran compiler that provides loop level
// parallelism. In such cases, the language library may implement its own notion
// of concurrency using LWPs." This example plays that run-time: DO-loop-style
// parallel loops over a grid, executed by a gang of LWPs — no sunmt threads
// involved — with a barrier between phases (the gang-scheduling clientele).
//
//   DO i = 1, N            ->  pool.ParallelFor(0, kN, ...)
//      b(i) = a(i) ...     ->  body lambda
//   END DO

#include <cmath>
#include <cstdio>
#include <vector>

#include "src/microtask/barrier.h"
#include "src/microtask/microtask.h"
#include "src/util/clock.h"

namespace {

constexpr int64_t kN = 1 << 20;
constexpr int kSweeps = 10;

struct Grid {
  std::vector<double> a;
  std::vector<double> b;
};

void JacobiSweep(int64_t i, void* cookie) {
  auto* grid = static_cast<Grid*>(cookie);
  if (i == 0 || i == kN - 1) {
    grid->b[i] = grid->a[i];
    return;
  }
  grid->b[i] = 0.25 * grid->a[i - 1] + 0.5 * grid->a[i] + 0.25 * grid->a[i + 1];
}

}  // namespace

int main() {
  sunmt::MicrotaskPool pool;  // one LWP per CPU
  pool.EnableGangClass();     // gang class + CPU binding, per the paper
  printf("fortran_microtask: %d-LWP gang, %lld-point Jacobi smoothing, %d sweeps\n",
         pool.size(), static_cast<long long>(kN), kSweeps);

  Grid grid;
  grid.a.assign(kN, 0.0);
  grid.b.assign(kN, 0.0);
  grid.a[kN / 2] = 1.0;  // impulse to diffuse

  sunmt::Stopwatch total;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    pool.ParallelFor(0, kN, 0, &JacobiSweep, &grid);
    std::swap(grid.a, grid.b);  // phase barrier: ParallelFor returns = all done
  }
  double elapsed_ms = total.ElapsedMs();

  // Mass conservation check: the smoothing kernel preserves the sum.
  double sum = 0;
  for (double v : grid.a) {
    sum += v;
  }
  printf("completed %lld point-updates in %.1f ms (%.1f Mupdates/s)\n",
         static_cast<long long>(kN) * kSweeps, elapsed_ms,
         static_cast<double>(kN) * kSweeps / elapsed_ms / 1e3);
  printf("mass conservation: sum = %.9f (expect 1.0), chunks dispatched = %llu\n", sum,
         static_cast<unsigned long long>(pool.chunks_dispatched()));
  return std::fabs(sum - 1.0) < 1e-9 ? 0 : 1;
}
