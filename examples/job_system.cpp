// Job system: a multi-process worker pool fed through shared-memory queues.
//
// The composition the paper's intro gestures at, end to end: a master process
// publishes jobs into a MessageQueue living in a SharedArena; fork1()ed worker
// processes each run a small pool of unbound threads that pull jobs, compute,
// and push results back on a response queue. Threads block on the queue
// semaphores — process-shared, so the same primitive coordinates threads in
// four different processes — and each worker's LWP pool sizes itself.

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "src/core/thread.h"
#include "src/ipc/fork1.h"
#include "src/ipc/shared_arena.h"
#include "src/msgq/message_queue.h"
#include "src/sync/sync.h"

namespace {

constexpr int kWorkerProcesses = 3;
constexpr int kThreadsPerWorker = 4;
constexpr int kJobs = 600;

struct Job {
  int id;
  uint64_t seed;
};

struct Result {
  int id;
  int worker_pid;
  uint64_t digest;
};

// The "work": a small deterministic hash chain.
uint64_t Crunch(uint64_t seed) {
  uint64_t h = seed;
  for (int i = 0; i < 20000; ++i) {
    h = h * 6364136223846793005ull + 1442695040888963407ull;
    h ^= h >> 33;
  }
  return h;
}

struct WorkerCtx {
  sunmt::MessageQueue* jobs;
  sunmt::MessageQueue* results;
  sunmt::sema_t done;
};

void WorkerThread(void* arg) {
  auto* ctx = static_cast<WorkerCtx*>(arg);
  for (;;) {
    Job job;
    if (ctx->jobs->Recv(&job, sizeof(job)) != sizeof(job)) {
      break;
    }
    if (job.id < 0) {  // poison pill: stop this thread
      break;
    }
    Result result{job.id, getpid(), Crunch(job.seed)};
    ctx->results->Send(&result, sizeof(result));
  }
  sunmt::sema_v(&ctx->done);
}

int RunWorkerProcess(void* jobs_mem, void* results_mem) {
  WorkerCtx ctx;
  ctx.jobs = sunmt::MessageQueue::OpenAt(jobs_mem);
  ctx.results = sunmt::MessageQueue::OpenAt(results_mem);
  sunmt::sema_init(&ctx.done, 0, 0, nullptr);
  if (ctx.jobs == nullptr || ctx.results == nullptr) {
    return 2;
  }
  for (int t = 0; t < kThreadsPerWorker; ++t) {
    if (sunmt::thread_create(nullptr, 0, &WorkerThread, &ctx, 0) == 0) {
      return 1;
    }
  }
  for (int t = 0; t < kThreadsPerWorker; ++t) {
    sunmt::sema_p(&ctx.done);
  }
  return 0;
}

}  // namespace

int main() {
  printf("job_system: %d jobs -> %d worker processes x %d threads via shared "
         "message queues\n",
         kJobs, kWorkerProcesses, kThreadsPerWorker);

  sunmt::SharedArena arena = sunmt::SharedArena::CreateAnonymous(1024 * 1024);
  void* jobs_mem = arena.At<char>(arena.Alloc(
      sunmt::MessageQueue::FootprintBytes(sizeof(Job), 64), alignof(std::max_align_t)));
  void* results_mem = arena.At<char>(
      arena.Alloc(sunmt::MessageQueue::FootprintBytes(sizeof(Result), 64),
                  alignof(std::max_align_t)));
  auto* jobs = sunmt::MessageQueue::CreateAt(jobs_mem, sizeof(Job), 64,
                                             sunmt::THREAD_SYNC_SHARED);
  auto* results = sunmt::MessageQueue::CreateAt(results_mem, sizeof(Result), 64,
                                                sunmt::THREAD_SYNC_SHARED);
  if (jobs == nullptr || results == nullptr) {
    fprintf(stderr, "queue creation failed\n");
    return 1;
  }

  pid_t pids[kWorkerProcesses];
  for (int w = 0; w < kWorkerProcesses; ++w) {
    pids[w] = sunmt::fork1();
    if (pids[w] < 0) {
      perror("fork1");
      return 1;
    }
    if (pids[w] == 0) {
      _exit(RunWorkerProcess(jobs_mem, results_mem));
    }
  }

  // Publish the jobs, consuming results concurrently so neither queue jams.
  static bool seen[kJobs];
  memset(seen, 0, sizeof(seen));
  int collected = 0;
  int mismatches = 0;
  for (int j = 0; j < kJobs; ++j) {
    Job job{j, static_cast<uint64_t>(j) * 2654435761ull + 1};
    jobs->Send(&job, sizeof(job));
    Result r;
    while (results->TryRecv(&r, sizeof(r)) != SIZE_MAX) {
      if (r.id < 0 || r.id >= kJobs || seen[r.id] ||
          r.digest != Crunch(static_cast<uint64_t>(r.id) * 2654435761ull + 1)) {
        ++mismatches;
      } else {
        seen[r.id] = true;
      }
      ++collected;
    }
  }
  while (collected < kJobs) {
    Result r;
    if (results->RecvTimed(&r, sizeof(r), 5LL * 1000 * 1000 * 1000) == SIZE_MAX) {
      fprintf(stderr, "timed out waiting for results\n");
      return 1;
    }
    if (r.id < 0 || r.id >= kJobs || seen[r.id] ||
        r.digest != Crunch(static_cast<uint64_t>(r.id) * 2654435761ull + 1)) {
      ++mismatches;
    } else {
      seen[r.id] = true;
    }
    ++collected;
  }
  // Poison pills: one per worker thread in every process.
  for (int p = 0; p < kWorkerProcesses * kThreadsPerWorker; ++p) {
    Job poison{-1, 0};
    jobs->Send(&poison, sizeof(poison));
  }
  for (int w = 0; w < kWorkerProcesses; ++w) {
    int status = 0;
    waitpid(pids[w], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      fprintf(stderr, "worker %d failed\n", w);
      return 1;
    }
  }
  int done = 0;
  for (bool s : seen) {
    done += s ? 1 : 0;
  }
  printf("collected %d/%d results, %d mismatches; every digest verified\n", done, kJobs,
         mismatches);
  return done == kJobs && mismatches == 0 ? 0 : 1;
}
