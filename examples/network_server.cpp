// Network server: blocking I/O, one thread per connection, SIGWAITING growth.
//
// The paper's network-server motivation: each request is "a separate sequence"
// written in blocking style, and the library keeps the process from deadlocking
// when every LWP is parked in the kernel waiting for I/O — SIGWAITING grows the
// pool on demand instead of pre-committing kernel resources.
//
// The "network" is a set of pipes (one per client). Each connection handler
// thread loops on a blocking io_read; a client pump writes requests with random
// delays. Watch the LWP pool: it starts at 1 and grows just enough.

#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/io/io.h"
#include "src/sync/sync.h"
#include "src/util/rng.h"

namespace {

constexpr int kConnections = 8;
constexpr int kRequestsPerConnection = 50;

struct Connection {
  int read_fd;
  int write_fd;
  int handled = 0;
  sunmt::sema_t* done;
};

void ConnectionHandler(void* arg) {
  auto* conn = static_cast<Connection*>(arg);
  for (;;) {
    char request = 0;
    ssize_t n = sunmt::io_read(conn->read_fd, &request, 1);  // blocks the LWP
    if (n != 1 || request == 'Q') {
      break;
    }
    // "Service" the request: echo a response byte (uppercase).
    char response = static_cast<char>(request - 'a' + 'A');
    sunmt::io_write(conn->write_fd, &response, 1);
    ++conn->handled;
  }
  sunmt::sema_v(conn->done);
}

}  // namespace

int main() {
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = 1;  // start minimal; let SIGWAITING size the pool
  sunmt::Runtime::Configure(config);

  printf("network_server: %d connections, blocking reads, pool starts at 1 LWP\n",
         kConnections);

  sunmt::sema_t done = {};
  Connection conns[kConnections];
  int request_wr[kConnections];   // client side: where the pump writes requests
  int response_rd[kConnections];  // client side: where the pump reads responses
  for (int c = 0; c < kConnections; ++c) {
    int request_pipe[2];
    int response_pipe[2];
    if (pipe(request_pipe) != 0 || pipe(response_pipe) != 0) {
      perror("pipe");
      return 1;
    }
    conns[c] = {request_pipe[0], response_pipe[1], 0, &done};
    request_wr[c] = request_pipe[1];
    response_rd[c] = response_pipe[0];
    sunmt::thread_create(nullptr, 0, &ConnectionHandler, &conns[c], 0);
  }

  int initial_pool = sunmt::Runtime::Get().pool_size();

  // The client pump: interleaved requests across connections.
  sunmt::SplitMix64 rng(7);
  int sent[kConnections] = {};
  int total_responses = 0;
  for (int round = 0; round < kConnections * kRequestsPerConnection; ++round) {
    int c = static_cast<int>(rng.NextBounded(kConnections));
    while (sent[c] >= kRequestsPerConnection) {
      c = (c + 1) % kConnections;
    }
    char request = static_cast<char>('a' + rng.NextBounded(26));
    if (write(request_wr[c], &request, 1) != 1) {
      perror("write");
      return 1;
    }
    ++sent[c];
    char response = 0;
    if (read(response_rd[c], &response, 1) != 1) {
      perror("read");
      return 1;
    }
    if (response != request - 'a' + 'A') {
      fprintf(stderr, "bad response\n");
      return 1;
    }
    ++total_responses;
  }

  // Shut the connections down.
  for (int c = 0; c < kConnections; ++c) {
    char quit = 'Q';
    (void)!write(request_wr[c], &quit, 1);
  }
  for (int c = 0; c < kConnections; ++c) {
    sunmt::sema_p(&done);
  }

  int handled = 0;
  for (const Connection& conn : conns) {
    handled += conn.handled;
  }
  printf("served %d requests across %d connections\n", handled, kConnections);
  printf("LWP pool: started at %d, grew to %d (SIGWAITING events: %llu)\n",
         initial_pool, sunmt::Runtime::Get().pool_size(),
         static_cast<unsigned long long>(sunmt::Runtime::Get().sigwaiting_count()));
  return handled == total_responses ? 0 : 1;
}
