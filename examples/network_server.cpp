// Network server: event-driven I/O on the netpoller, one thread per connection.
//
// The paper's network-server motivation — each request is "a separate sequence"
// written in blocking style — but served the M:N way: every fd is registered
// with the netpoller (src/net), so a handler waiting for a request parks the
// *thread* on readiness instead of pinning an LWP in the kernel. The LWP pool
// stays at its configured size no matter how many connections sit idle; compare
// with the SIGWAITING growth this example demonstrated before the netpoller
// existed (bench/abl_net_echo.cc measures both paths side by side).
//
// The connections are real TCP sockets over loopback. The acceptor uses the
// three-argument io_accept — which both fills in the peer address and, because
// the listener is registered, routes through the poller's parking path.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/io/io.h"
#include "src/net/net.h"

namespace {

constexpr int kConnections = 8;
constexpr int kRequestsPerConnection = 25;
constexpr int kPoolLwps = 2;

std::atomic<int> g_requests_served{0};
std::atomic<int> g_handlers_done{0};
std::atomic<int> g_clients_ok{0};
sockaddr_in g_server_addr = {};

// One handler thread per accepted connection: parked on readiness between
// requests, costing no LWP while idle.
void ConnectionHandler(void* arg) {
  int fd = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  for (;;) {
    char request = 0;
    ssize_t n = sunmt::net_read(fd, &request, 1);
    if (n != 1 || request == 'Q') {
      break;
    }
    char response = static_cast<char>(request - 'a' + 'A');
    if (sunmt::net_write(fd, &response, 1) != 1) {
      break;
    }
    g_requests_served.fetch_add(1);
  }
  sunmt::net_unregister(fd);
  close(fd);
  g_handlers_done.fetch_add(1);
}

void Acceptor(void* arg) {
  int listener = static_cast<int>(reinterpret_cast<intptr_t>(arg));
  for (int accepted = 0; accepted < kConnections; ++accepted) {
    sockaddr_in peer = {};
    socklen_t peer_len = sizeof(peer);
    // Three-argument accept: peer address filled in, no extra getpeername —
    // and the registered listener routes this through the poller.
    int conn = sunmt::io_accept(listener, reinterpret_cast<sockaddr*>(&peer),
                                &peer_len);
    if (conn < 0) {
      fprintf(stderr, "accept failed: errno %d\n", sunmt::thread_errno());
      break;
    }
    if (sunmt::net_register(conn) != 0) {
      close(conn);
      break;
    }
    printf("  accepted connection %d from %s:%d\n", accepted,
           inet_ntoa(peer.sin_addr), ntohs(peer.sin_port));
    sunmt::thread_create(nullptr, 0, &ConnectionHandler,
                         reinterpret_cast<void*>(static_cast<intptr_t>(conn)), 0);
  }
}

void Client(void*) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || sunmt::net_register(fd) != 0 ||
      sunmt::net_connect(fd, reinterpret_cast<sockaddr*>(&g_server_addr),
                         sizeof(g_server_addr)) != 0) {
    fprintf(stderr, "connect failed: errno %d\n", sunmt::thread_errno());
    return;
  }
  bool ok = true;
  for (int i = 0; i < kRequestsPerConnection && ok; ++i) {
    char request = static_cast<char>('a' + (i % 26));
    char response = 0;
    ok = sunmt::net_write(fd, &request, 1) == 1 &&
         sunmt::net_read(fd, &response, 1) == 1 &&
         response == request - 'a' + 'A';
  }
  char quit = 'Q';
  sunmt::net_write(fd, &quit, 1);
  sunmt::net_unregister(fd);
  close(fd);
  if (ok) {
    g_clients_ok.fetch_add(1);
  }
}

}  // namespace

int main() {
  sunmt::RuntimeConfig config;
  config.initial_pool_lwps = kPoolLwps;  // fixed small pool: the point
  sunmt::Runtime::Configure(config);

  if (sunmt::net_poller_start() != 0) {
    fprintf(stderr, "net_poller_start failed\n");
    return 1;
  }

  int listener = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  socklen_t len = sizeof(addr);
  if (listener < 0 || bind(listener, reinterpret_cast<sockaddr*>(&addr), len) != 0 ||
      listen(listener, kConnections) != 0 ||
      getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      sunmt::net_register(listener) != 0) {
    perror("listener setup");
    return 1;
  }
  g_server_addr = addr;

  printf("network_server: %d TCP connections on 127.0.0.1:%d, pool fixed at %d LWPs\n",
         kConnections, ntohs(addr.sin_port), kPoolLwps);

  sunmt::thread_create(nullptr, 0, &Acceptor,
                       reinterpret_cast<void*>(static_cast<intptr_t>(listener)), 0);
  sunmt::thread_id_t clients[kConnections];
  for (int c = 0; c < kConnections; ++c) {
    clients[c] = sunmt::thread_create(nullptr, 0, &Client, nullptr,
                                      sunmt::THREAD_WAIT);
  }
  for (int c = 0; c < kConnections; ++c) {
    sunmt::thread_wait(clients[c]);
  }
  while (g_handlers_done.load() < kConnections) {
    sunmt::io_sleep_ms(1);
  }
  sunmt::net_unregister(listener);
  close(listener);

  printf("served %d requests across %d connections\n", g_requests_served.load(),
         kConnections);
  printf("LWP pool: stayed at %d (threads parked on readiness, not LWPs; "
         "SIGWAITING events: %llu)\n",
         sunmt::Runtime::Get().pool_size(),
         static_cast<unsigned long long>(sunmt::Runtime::Get().sigwaiting_count()));

  bool ok = g_clients_ok.load() == kConnections &&
            g_requests_served.load() == kConnections * kRequestsPerConnection &&
            sunmt::Runtime::Get().pool_size() == kPoolLwps;
  if (!ok) {
    fprintf(stderr, "FAIL: clients_ok=%d served=%d pool=%d\n", g_clients_ok.load(),
            g_requests_served.load(), sunmt::Runtime::Get().pool_size());
  }
  return ok ? 0 : 1;
}
