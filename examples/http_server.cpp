// HTTP server: the paper's many-connections workload end to end.
//
// Default mode runs one process: an HttpServer (src/http) on a loopback
// ephemeral port — sharded response cache, msgq access log, one unbound
// thread per connection — plus in-process keep-alive clients driving it.
// The LWP pool stays at its configured size while connections come and go;
// that is the architecture's claim, and the exit code checks it.
//
//   ./http_server              # single process
//   ./http_server --prefork=3  # stretch: 3 SO_REUSEPORT sibling processes
//
// Pre-fork mode is the paper's THREAD_SYNC_SHARED story under load: the
// parent reserves a port, fork1()s N children that each bind it with
// SO_REUSEPORT and run their own server, and every child's cache updates one
// HttpCacheSharedStats block in a shared anonymous arena under an
// address-free cross-process mutex. The parent drives clients at the shared
// port (the kernel spreads connections over the siblings) and finally checks
// that the summed shared counters account for every GET sent.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <string>

#include "src/core/runtime.h"
#include "src/core/thread.h"
#include "src/http/server.h"
#include "src/io/io.h"
#include "src/ipc/fork1.h"
#include "src/ipc/shared_arena.h"
#include "src/net/net.h"

namespace {

constexpr int kPoolLwps = 2;
constexpr int kClients = 8;
constexpr int kRequestsPerClient = 50;

std::atomic<int> g_clients_ok{0};
std::atomic<long> g_responses_200{0};

void InstallHandler(sunmt::HttpServerConfig* config) {
  config->handler = [](const sunmt::HttpMessage& req, sunmt::HttpExchange* ex) {
    if (req.target == "/hello") {
      ex->Respond(200, "text/plain", "hello, world\n");
    } else if (req.target == "/") {
      ex->Respond(200, "text/html",
                  "<html><body><h1>sunmt http</h1>"
                  "<p>one thread per connection, ~#LWPs total</p>"
                  "</body></html>\n");
    } else if (req.target == "/stream") {
      sunmt::HttpChunkedWriter* w = ex->BeginChunked(200, "text/plain");
      w->WriteChunk("chunk one\n");
      w->WriteChunk("chunk two\n");
      w->WriteChunk("chunk three\n");
    }
    // anything else: the server's default 404
  };
}

// One keep-alive client connection issuing GET /hello in a loop and checking
// each response is a 200.
void ClientMain(void* arg) {
  uint16_t port = static_cast<uint16_t>(reinterpret_cast<uintptr_t>(arg));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0 || sunmt::net_register(fd) != 0 ||
      sunmt::net_connect(fd, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) != 0) {
    fprintf(stderr, "client connect failed: errno %d\n", sunmt::thread_errno());
    if (fd >= 0) close(fd);
    return;
  }
  const char kRequest[] =
      "GET /hello HTTP/1.1\r\nHost: example\r\nConnection: keep-alive\r\n\r\n";
  sunmt::HttpParser parser(sunmt::HttpParser::kResponse);
  sunmt::HttpMessage resp;
  char buf[4096];
  bool ok = true;
  for (int i = 0; i < kRequestsPerClient && ok; ++i) {
    ok = sunmt::net_write(fd, kRequest, sizeof(kRequest) - 1) ==
         static_cast<ssize_t>(sizeof(kRequest) - 1);
    while (ok) {
      sunmt::HttpParser::Result r = parser.Next(&resp);
      if (r == sunmt::HttpParser::kMessage) {
        if (resp.status == 200) g_responses_200.fetch_add(1);
        ok = resp.status == 200;
        break;
      }
      if (r == sunmt::HttpParser::kError) {
        ok = false;
        break;
      }
      ssize_t n = sunmt::net_read(fd, buf, sizeof(buf));
      if (n <= 0) {
        ok = false;
        break;
      }
      parser.Feed(buf, static_cast<size_t>(n));
    }
  }
  sunmt::net_unregister(fd);
  close(fd);
  if (ok) g_clients_ok.fetch_add(1);
}

int RunClients(uint16_t port) {
  sunmt::thread_id_t clients[kClients];
  for (int c = 0; c < kClients; ++c) {
    clients[c] = sunmt::thread_create(
        nullptr, 0, &ClientMain,
        reinterpret_cast<void*>(static_cast<uintptr_t>(port)),
        sunmt::THREAD_WAIT);
  }
  for (int c = 0; c < kClients; ++c) {
    sunmt::thread_wait(clients[c]);
  }
  return g_clients_ok.load() == kClients ? 0 : 1;
}

int RunSingle() {
  sunmt::RuntimeConfig rc;
  rc.initial_pool_lwps = kPoolLwps;
  sunmt::Runtime::Configure(rc);
  if (sunmt::net_poller_start() != 0) {
    fprintf(stderr, "net_poller_start failed\n");
    return 1;
  }

  sunmt::HttpCache cache(/*shards=*/8, /*max_bytes=*/1 << 20);
  sunmt::HttpAccessLog access_log(STDOUT_FILENO, /*capacity=*/256);
  sunmt::HttpServerConfig config;
  config.cache = &cache;
  config.access_log = &access_log;
  InstallHandler(&config);
  sunmt::HttpServer server(std::move(config));
  if (server.Start() != 0) {
    fprintf(stderr, "server start failed: errno %d\n", sunmt::thread_errno());
    return 1;
  }
  printf("http_server: listening on 127.0.0.1:%d, pool fixed at %d LWPs\n",
         server.port(), kPoolLwps);

  int rc_clients = RunClients(server.port());
  server.Stop();
  access_log.Stop();

  sunmt::HttpServerStats stats = server.SnapshotStats();
  sunmt::HttpCache::Stats cstats = cache.SnapshotStats();
  printf("served %llu requests on %llu connections "
         "(cache: %llu hits / %llu misses; log: %llu lines)\n",
         static_cast<unsigned long long>(stats.responses),
         static_cast<unsigned long long>(stats.accepted),
         static_cast<unsigned long long>(cstats.hits),
         static_cast<unsigned long long>(cstats.misses),
         static_cast<unsigned long long>(access_log.lines_written()));
  printf("LWP pool: stayed at %d (connections parked on the netpoller)\n",
         sunmt::Runtime::Get().pool_size());

  bool ok = rc_clients == 0 &&
            stats.responses ==
                static_cast<uint64_t>(kClients) * kRequestsPerClient &&
            cstats.hits > 0 &&  // /hello is cache-filled, then hit
            sunmt::Runtime::Get().pool_size() == kPoolLwps;
  if (!ok) {
    fprintf(stderr, "FAIL: clients_ok=%d responses=%llu hits=%llu pool=%d\n",
            g_clients_ok.load(),
            static_cast<unsigned long long>(stats.responses),
            static_cast<unsigned long long>(cstats.hits),
            sunmt::Runtime::Get().pool_size());
  }
  return ok ? 0 : 1;
}

// ------------------------------------------------------------- pre-fork ----

// Child: own runtime, own poller, own HttpServer bound to the shared port
// with SO_REUSEPORT, cache statistics wired to the shared arena. Runs until
// the parent closes the control pipe.
int PreforkChild(uint16_t port, sunmt::HttpCacheSharedStats* shared,
                 int ctl_read_fd, int ready_write_fd) {
  sunmt::RuntimeConfig rc;
  rc.initial_pool_lwps = kPoolLwps;
  sunmt::Runtime::Configure(rc);
  if (sunmt::net_poller_start() != 0) {
    return 1;
  }
  sunmt::HttpCache cache(/*shards=*/8, /*max_bytes=*/1 << 20);
  cache.AttachSharedStats(shared);
  sunmt::HttpServerConfig config;
  config.port = port;
  config.reuseport = true;
  config.cache = &cache;
  InstallHandler(&config);
  sunmt::HttpServer server(std::move(config));
  if (server.Start() != 0) {
    return 1;
  }
  char ready = 'R';
  if (sunmt::io_write(ready_write_fd, &ready, 1) != 1) {
    return 1;
  }
  char byte;
  while (sunmt::io_read(ctl_read_fd, &byte, 1) > 0) {
  }
  server.Stop();
  return 0;
}

int RunPrefork(int nprocs) {
  // Reserve a port for the whole sibling group: bound (so nobody else can
  // take it) but never listening (so it receives no connections).
  int placeholder = socket(AF_INET, SOCK_STREAM, 0);
  int one = 1;
  setsockopt(placeholder, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  setsockopt(placeholder, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  socklen_t len = sizeof(addr);
  if (placeholder < 0 ||
      bind(placeholder, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      getsockname(placeholder, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    perror("port reservation");
    return 1;
  }
  uint16_t port = ntohs(addr.sin_port);

  sunmt::SharedArena arena = sunmt::SharedArena::CreateAnonymous(4096);
  sunmt::HttpCacheSharedStats* shared =
      sunmt::HttpCacheSharedStats::InitShared(
          arena.New<sunmt::HttpCacheSharedStats>());

  int ctl[2];   // parent closes write end => children drain and exit
  int ready[2]; // each child writes one byte once it is listening
  if (pipe(ctl) != 0 || pipe(ready) != 0) {
    perror("pipe");
    return 1;
  }

  pid_t pids[64];
  if (nprocs > 64) nprocs = 64;
  for (int i = 0; i < nprocs; ++i) {
    pid_t pid = sunmt::fork1();
    if (pid < 0) {
      perror("fork1");
      return 1;
    }
    if (pid == 0) {
      close(placeholder);
      close(ctl[1]);
      close(ready[0]);
      int code = PreforkChild(port, shared, ctl[0], ready[1]);
      _exit(code);
    }
    pids[i] = pid;
  }
  close(ctl[0]);
  close(ready[1]);

  for (int i = 0; i < nprocs; ++i) {
    char byte;
    if (read(ready[0], &byte, 1) != 1) {
      fprintf(stderr, "a pre-fork child failed to start\n");
      return 1;
    }
  }
  printf("http_server: %d pre-forked siblings on 127.0.0.1:%d\n", nprocs, port);

  // Now the parent becomes the load generator.
  sunmt::RuntimeConfig rc;
  rc.initial_pool_lwps = kPoolLwps;
  sunmt::Runtime::Configure(rc);
  if (sunmt::net_poller_start() != 0) {
    return 1;
  }
  int rc_clients = RunClients(port);

  close(ctl[1]);  // EOF on the control pipe: children stop
  bool children_ok = true;
  for (int i = 0; i < nprocs; ++i) {
    int status = 0;
    waitpid(pids[i], &status, 0);
    children_ok &= WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  close(placeholder);

  // Every GET went through exactly one sibling's cache, and every sibling
  // published its lookups to the one shared block.
  sunmt::mutex_enter(&shared->lock);
  unsigned long long hits = shared->hits;
  unsigned long long misses = shared->misses;
  unsigned long long inserts = shared->inserts;
  sunmt::mutex_exit(&shared->lock);
  unsigned long long expected =
      static_cast<unsigned long long>(kClients) * kRequestsPerClient;
  printf("shared cache stats across %d processes: %llu hits, %llu misses, "
         "%llu inserts (lookups=%llu, expected %llu)\n",
         nprocs, hits, misses, inserts, hits + misses, expected);

  bool ok = rc_clients == 0 && children_ok && hits + misses == expected;
  if (!ok) {
    fprintf(stderr, "FAIL: clients=%d children_ok=%d lookups=%llu/%llu\n",
            rc_clients, children_ok ? 1 : 0, hits + misses, expected);
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int prefork = 0;
  for (int i = 1; i < argc; ++i) {
    if (strncmp(argv[i], "--prefork=", 10) == 0) {
      prefork = atoi(argv[i] + 10);
    }
  }
  return prefork > 0 ? RunPrefork(prefork) : RunSingle();
}
