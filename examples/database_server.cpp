// Database server: record locks in a mapped file, shared across processes.
//
// The paper: "a file can be created that contains data base records. Each
// record can contain a mutual exclusion lock variable that controls access to
// the associated record. A process can map the file and a thread within it can
// obtain the lock associated with a particular record ... if any thread within
// any process mapping the file attempts to acquire the lock, that thread will
// block until the lock is released."
//
// Built on src/recordstore (that paragraph turned into a library): a bank of
// accounts lives in a RecordStore file; the server fork1()s into several worker
// processes, each running several unbound threads performing random transfers
// plus a read-only auditor taking consistent snapshots under TryLock. Money is
// conserved iff the cross-process record locks work.

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "src/core/thread.h"
#include "src/ipc/fork1.h"
#include "src/recordstore/record_store.h"
#include "src/sync/sync.h"
#include "src/util/rng.h"

namespace {

constexpr uint32_t kAccounts = 64;
constexpr int kProcesses = 3;
constexpr int kThreadsPerProcess = 8;
constexpr int kTransfersPerThread = 2000;
constexpr long kInitialBalance = 1000;
const char* kDbPath = "/tmp/sunmt_bank.db";

struct Account {
  long balance;
};

struct TransferJob {
  sunmt::RecordStore* store;
  uint64_t seed;
  sunmt::sema_t* done;
};

void TransferWorker(void* arg) {
  auto* job = static_cast<TransferJob*>(arg);
  sunmt::SplitMix64 rng(job->seed);
  for (int i = 0; i < kTransfersPerThread; ++i) {
    uint32_t from = static_cast<uint32_t>(rng.NextBounded(kAccounts));
    uint32_t to = static_cast<uint32_t>(rng.NextBounded(kAccounts - 1));
    if (to >= from) {
      ++to;
    }
    long amount = static_cast<long>(rng.NextBounded(10)) + 1;
    // Lock ordering by index avoids deadlock across every process.
    uint32_t first = from < to ? from : to;
    uint32_t second = from < to ? to : from;
    auto* a = static_cast<Account*>(job->store->Lock(first));
    auto* b = static_cast<Account*>(job->store->Lock(second));
    Account* src = (first == from) ? a : b;
    Account* dst = (first == from) ? b : a;
    src->balance -= amount;
    dst->balance += amount;
    job->store->Unlock(second);
    job->store->Unlock(first);
  }
  sunmt::sema_v(job->done);
}

// One worker process: opens the database and runs its transfer threads plus a
// lightweight auditor that samples record balances without blocking writers.
int RunWorkerProcess(int process_index) {
  sunmt::RecordStore store = sunmt::RecordStore::Open(kDbPath);
  if (!store.valid()) {
    return 2;
  }
  sunmt::sema_t done = {};
  TransferJob jobs[kThreadsPerProcess];
  for (int t = 0; t < kThreadsPerProcess; ++t) {
    jobs[t] = {&store, static_cast<uint64_t>(process_index) * 1000 + t + 1, &done};
    if (sunmt::thread_create(nullptr, 0, &TransferWorker, &jobs[t], 0) == 0) {
      return 1;
    }
  }
  // Auditor: non-blocking sampling while the transfers run.
  long samples = 0;
  for (int round = 0; round < 50; ++round) {
    for (uint32_t i = 0; i < kAccounts; ++i) {
      if (void* p = store.TryLock(i)) {
        samples += static_cast<Account*>(p)->balance > -100000 ? 1 : 0;
        store.Unlock(i);
      }
    }
    sunmt::thread_yield();
  }
  for (int t = 0; t < kThreadsPerProcess; ++t) {
    sunmt::sema_p(&done);
  }
  return samples > 0 ? 0 : 3;
}

}  // namespace

int main() {
  printf("database_server: %d processes x %d threads transferring between %d "
         "accounts (RecordStore-backed)\n",
         kProcesses + 1, kThreadsPerProcess, kAccounts);

  // Create and populate the database file.
  sunmt::RecordStore::Unlink(kDbPath);
  {
    sunmt::RecordStore store =
        sunmt::RecordStore::Create(kDbPath, sizeof(Account), kAccounts);
    if (!store.valid()) {
      fprintf(stderr, "store creation failed\n");
      return 1;
    }
    for (uint32_t i = 0; i < kAccounts; ++i) {
      static_cast<Account*>(store.UnsafeAt(i))->balance = kInitialBalance;
    }
  }

  pid_t pids[kProcesses];
  for (int p = 0; p < kProcesses; ++p) {
    pids[p] = sunmt::fork1();
    if (pids[p] < 0) {
      perror("fork1");
      return 1;
    }
    if (pids[p] == 0) {
      _exit(RunWorkerProcess(p));
    }
  }
  if (RunWorkerProcess(kProcesses) != 0) {
    return 1;
  }
  for (int p = 0; p < kProcesses; ++p) {
    int status = 0;
    waitpid(pids[p], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      fprintf(stderr, "worker process %d failed (%d)\n", p, WEXITSTATUS(status));
      return 1;
    }
  }

  // Audit: total money must be conserved.
  sunmt::RecordStore store = sunmt::RecordStore::Open(kDbPath);
  long total = 0;
  long min_balance = 0, max_balance = 0;
  for (uint32_t i = 0; i < kAccounts; ++i) {
    long b = static_cast<Account*>(store.UnsafeAt(i))->balance;
    total += b;
    min_balance = (i == 0 || b < min_balance) ? b : min_balance;
    max_balance = (i == 0 || b > max_balance) ? b : max_balance;
  }
  long expected = static_cast<long>(kAccounts) * kInitialBalance;
  printf("%d transfers done; total=%ld (expected %ld), balances in [%ld, %ld]\n",
         (kProcesses + 1) * kThreadsPerProcess * kTransfersPerThread, total, expected,
         min_balance, max_balance);
  sunmt::RecordStore::Unlink(kDbPath);
  return total == expected ? 0 : 1;
}
