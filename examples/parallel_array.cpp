// Parallel array computation: bound threads, one per processor.
//
// The paper: "A parallel array computation divides the rows of its arrays among
// different threads. If there is one LWP per processor, but multiple threads per
// LWP, each processor would spend overhead switching between threads. It would
// be better to ... divide the rows among a smaller number of threads [each]
// permanently bound to its own LWP" — turning thread code into LWP code, "much
// like locking down pages turns virtual memory into real memory".
//
// This example runs a row-partitioned matrix multiply twice: once with one
// BOUND thread per online CPU (the paper's recommendation), and once with 8x
// more unbound threads than CPUs (over-decomposed), printing both timings.

#include <unistd.h>

#include <cstdio>
#include <vector>

#include "src/core/thread.h"
#include "src/sync/sync.h"
#include "src/util/clock.h"

namespace {

constexpr int kN = 192;  // matrices are kN x kN

std::vector<double> g_a(kN* kN), g_b(kN* kN), g_c(kN* kN);

struct RowJob {
  int row_begin;
  int row_end;
  sunmt::sema_t* done;
};

void MultiplyRows(void* arg) {
  auto* job = static_cast<RowJob*>(arg);
  for (int i = job->row_begin; i < job->row_end; ++i) {
    for (int j = 0; j < kN; ++j) {
      double sum = 0;
      for (int k = 0; k < kN; ++k) {
        sum += g_a[i * kN + k] * g_b[k * kN + j];
      }
      g_c[i * kN + j] = sum;
    }
    if ((i - job->row_begin) % 8 == 7) {
      sunmt::thread_yield();  // be a good citizen when unbound
    }
  }
  sunmt::sema_v(job->done);
}

double RunPartitioned(int nthreads, int flags) {
  sunmt::sema_t done = {};
  std::vector<RowJob> jobs(nthreads);
  int rows_per = (kN + nthreads - 1) / nthreads;
  int64_t start = sunmt::MonotonicNowNs();
  for (int t = 0; t < nthreads; ++t) {
    int begin = t * rows_per;
    int end = begin + rows_per < kN ? begin + rows_per : kN;
    jobs[t] = {begin, end, &done};
    sunmt::thread_create(nullptr, 0, &MultiplyRows, &jobs[t], flags);
  }
  for (int t = 0; t < nthreads; ++t) {
    sunmt::sema_p(&done);
  }
  return static_cast<double>(sunmt::MonotonicNowNs() - start) / 1e6;
}

}  // namespace

int main() {
  int ncpus = static_cast<int>(sysconf(_SC_NPROCESSORS_ONLN));
  printf("parallel_array: %dx%d matmul on %d CPU(s)\n", kN, kN, ncpus);

  // Initialize inputs.
  for (int i = 0; i < kN * kN; ++i) {
    g_a[i] = (i % 7) * 0.5;
    g_b[i] = (i % 11) * 0.25;
  }

  // Warm-up.
  RunPartitioned(ncpus, sunmt::THREAD_BIND_LWP);
  double ref = g_c[kN * kN / 2];

  double bound_ms = RunPartitioned(ncpus, sunmt::THREAD_BIND_LWP);
  bool bound_ok = g_c[kN * kN / 2] == ref;
  double over_ms = RunPartitioned(8 * ncpus, /*flags=*/0);
  bool over_ok = g_c[kN * kN / 2] == ref;

  printf("  %-44s %8.2f ms\n", "bound threads, one per CPU (paper's advice):",
         bound_ms);
  printf("  %-44s %8.2f ms\n", "8x over-decomposed unbound threads:", over_ms);
  printf("  switching overhead of over-decomposition: %.1f%%\n",
         (over_ms / bound_ms - 1) * 100);
  return bound_ok && over_ok ? 0 : 1;
}
